"""A real RDBMS backend over the Python standard library's ``sqlite3``.

This is the missing right-hand side of paper Figure 2: the "executable
reformulation (SQL)" is not just displayed but actually shipped to a
relational engine.  Tables are created with ``CREATE TABLE``, bulk-loaded
with ``executemany``, indexed on join columns, and reformulations run as
parameterized statements produced by
:func:`~repro.storage.sql.render_sql_query`, so the SQL generation is
validated end-to-end against a genuine query processor.
"""

from __future__ import annotations

import re
import sqlite3
import threading
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ...errors import EvaluationError, SchemaError, StorageError
from ...logical.queries import ConjunctiveQuery, UnionQuery
from ...logical.terms import Variable, is_variable
from ...profile import SCAN, STATEMENT, UNION_BRANCH, current_profile
from ..sql import SQLQuery, quote_identifier, render_sql_query, render_union_sql_query
from .base import Query, Row, StorageBackend


def _uses_connection(method):
    """Run *method* inside the backend's in-flight guard (see ``_use``)."""
    import functools

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._use():
            return method(self, *args, **kwargs)

    return wrapper


class _BackendSchema:
    """Adapter exposing the backend's column names to the SQL renderer."""

    class _Relation:
        __slots__ = ("attributes",)

        def __init__(self, attributes: Tuple[str, ...]):
            self.attributes = attributes

    def __init__(self, attributes: Dict[str, Tuple[str, ...]]):
        self._attributes = attributes

    def __contains__(self, name: str) -> bool:
        return name in self._attributes

    def relation(self, name: str) -> "_BackendSchema._Relation":
        return self._Relation(self._attributes[name])


class SQLiteBackend(StorageBackend):
    """Executes reformulations as parameterized SQL on a SQLite database.

    The backend owns exactly one :mod:`sqlite3` connection.  Its lifecycle
    is explicit: :meth:`close` releases the connection and is not
    idempotent — closing twice or using any method after :meth:`close`
    raises :class:`~repro.errors.StorageError`.  The connection is created
    with SQLite's default thread affinity (*check_same_thread*), so a single
    backend must not be handed between threads; a
    :class:`~repro.serve.pool.ConnectionPool` hands out :meth:`clone`\\ s
    instead, which are created thread-portable.
    """

    backend_name = "sqlite"

    def __init__(
        self,
        path: str = ":memory:",
        auto_index: bool = True,
        check_same_thread: bool = True,
    ):
        self.path = path
        self.check_same_thread = check_same_thread
        self._connection = sqlite3.connect(path, check_same_thread=check_same_thread)
        self._arities: Dict[str, int] = {}
        self._attributes: Dict[str, Tuple[str, ...]] = {}
        self._schema = _BackendSchema(self._attributes)
        self._indexed: Set[Tuple[str, str]] = set()
        self.auto_index = auto_index
        self._closed = False
        # Concurrency-safe teardown: operations touching the connection
        # register in-flight under this lock, and close() defers releasing
        # the sqlite3 connection until the last one exits — freeing a
        # connection another thread is stepping is a segfault, not an
        # exception (the replicated backend kills/fences replicas while
        # readers may be mid-query).
        self._state_lock = threading.Lock()
        self._inflight = 0
        self._connection_released = False
        # (name, position) -> (row count when measured, distinct count):
        # the profile estimator's memo, invalidated by row-count change,
        # so sampled profiling does not re-run COUNT(DISTINCT) per query.
        self._distinct_cache: Dict[Tuple[str, int], Tuple[int, int]] = {}
        self._adopt_existing_tables()

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError(
                "SQLiteBackend has been closed; create a new backend "
                "(or check a connection out of a pool) instead of reusing it"
            )

    @contextmanager
    def _use(self) -> Iterator[None]:
        """Register one connection-touching operation (see close())."""
        with self._state_lock:
            self._require_open()
            self._inflight += 1
        release = False
        try:
            yield
        finally:
            with self._state_lock:
                self._inflight -= 1
                if (
                    self._closed
                    and self._inflight == 0
                    and not self._connection_released
                ):
                    self._connection_released = True
                    release = True
            if release:
                self._connection.close()

    def _adopt_existing_tables(self) -> None:
        """Register tables already present in an on-disk database file."""
        cursor = self._connection.execute(
            "SELECT name FROM sqlite_master "
            "WHERE type = 'table' AND name NOT LIKE 'sqlite_%'"
        )
        for (name,) in cursor.fetchall():
            info = self._connection.execute(
                f"PRAGMA table_info({quote_identifier(name)})"
            ).fetchall()
            columns = tuple(row[1] for row in info)
            self._arities[name] = len(columns)
            self._attributes[name] = columns

    # -- schema and data loading ---------------------------------------
    @_uses_connection
    def create_table(
        self, name: str, arity: int, attributes: Optional[Sequence[str]] = None
    ) -> None:
        self._require_open()
        if name in self._arities:
            raise SchemaError(f"table {name} already exists")
        if attributes is not None and len(attributes) != arity:
            raise SchemaError(f"table {name}: attribute count does not match arity")
        columns = tuple(attributes) if attributes else tuple(
            f"c{i}" for i in range(arity)
        )
        column_sql = ", ".join(quote_identifier(column) for column in columns)
        self._connection.execute(
            f"CREATE TABLE {quote_identifier(name)} ({column_sql})"
        )
        self._arities[name] = arity
        self._attributes[name] = columns

    def has_table(self, name: str) -> bool:
        return name in self._arities

    @_uses_connection
    def clear_table(self, name: str) -> None:
        self._require_table(name)
        self._connection.execute(f"DELETE FROM {quote_identifier(name)}")

    def _prepare_rows(
        self, name: str, rows: Iterable[Sequence[object]]
    ) -> List[Tuple[object, ...]]:
        arity = self._require_table(name)
        prepared: List[Tuple[object, ...]] = []
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise EvaluationError(
                    f"table {name}: expected {arity} values, got {len(row)}"
                )
            prepared.append(row)
        return prepared

    def _insert_prepared(self, name: str, prepared: List[Tuple[object, ...]]) -> None:
        """Run the INSERT statements without committing (callers own that)."""
        placeholders = ", ".join("?" for _ in self._attributes[name])
        try:
            self._connection.executemany(
                f"INSERT INTO {quote_identifier(name)} VALUES ({placeholders})",
                prepared,
            )
        except sqlite3.Error as error:
            # Unbindable values raise InterfaceError on older Pythons and
            # ProgrammingError on 3.12+; both must surface as the typed
            # EvaluationError callers branch on — unless the connection
            # was closed out from under us, which is an engine failure.
            if self._closed:
                raise StorageError(
                    f"SQLiteBackend was closed during execution: {error}"
                ) from error
            raise EvaluationError(
                f"table {name}: value not storable in SQLite ({error})"
            ) from error

    @_uses_connection
    def insert_many(self, name: str, rows: Iterable[Sequence[object]]) -> None:
        prepared = self._prepare_rows(name, rows)
        if not prepared:
            return
        self._insert_prepared(name, prepared)
        self._connection.commit()

    def _delete_prepared(self, name: str, prepared: List[Tuple[object, ...]]) -> int:
        """Bag-semantics delete by rowid, without committing.

        Each requested row removes at most one stored occurrence: the
        inner SELECT picks a single matching rowid.  ``IS`` (null-safe
        equality) keeps ``None`` deletable.
        """
        columns = self._attributes[name]
        predicate = " AND ".join(f"{quote_identifier(c)} IS ?" for c in columns)
        statement = (
            f"DELETE FROM {quote_identifier(name)} WHERE rowid = ("
            f"SELECT rowid FROM {quote_identifier(name)} "
            f"WHERE {predicate} LIMIT 1)"
        )
        removed = 0
        try:
            for row in prepared:
                cursor = self._connection.execute(statement, row)
                removed += cursor.rowcount if cursor.rowcount > 0 else 0
        except sqlite3.Error as error:
            if self._closed:
                raise StorageError(
                    f"SQLiteBackend was closed during execution: {error}"
                ) from error
            raise EvaluationError(
                f"table {name}: delete failed ({error})"
            ) from error
        return removed

    @_uses_connection
    def delete_many(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        prepared = self._prepare_rows(name, rows)
        if not prepared:
            return 0
        removed = self._delete_prepared(name, prepared)
        self._connection.commit()
        return removed

    @_uses_connection
    def apply(self, changeset: "ChangeSet") -> None:
        """Apply a whole change set in one transaction (all or nothing)."""
        self._require_open()
        try:
            for change in changeset.changes:
                deletes = self._prepare_rows(change.relation, change.deletes)
                inserts = self._prepare_rows(change.relation, change.inserts)
                if deletes:
                    self._delete_prepared(change.relation, deletes)
                if inserts:
                    self._insert_prepared(change.relation, inserts)
            self._connection.commit()
        except Exception:
            try:
                self._connection.rollback()
            except sqlite3.Error:
                pass
            raise

    def _require_table(self, name: str) -> int:
        self._require_open()
        try:
            return self._arities[name]
        except KeyError as error:
            raise EvaluationError(f"unknown table {name!r}") from error

    # -- inspection ----------------------------------------------------
    @property
    def table_names(self) -> Tuple[str, ...]:
        return tuple(self._arities)

    @_uses_connection
    def rows(self, name: str) -> Sequence[Row]:
        self._require_table(name)
        cursor = self._connection.execute(
            f"SELECT * FROM {quote_identifier(name)} ORDER BY rowid"
        )
        return tuple(tuple(row) for row in cursor.fetchall())

    @_uses_connection
    def cardinalities(self) -> Dict[str, int]:
        self._require_open()
        counts: Dict[str, int] = {}
        for name in self._arities:
            cursor = self._connection.execute(
                f"SELECT COUNT(*) FROM {quote_identifier(name)}"
            )
            counts[name] = int(cursor.fetchone()[0])
        return counts

    @_uses_connection
    def cardinality(self, name: str) -> int:
        self._require_open()
        if name not in self._arities:
            return 0
        cursor = self._connection.execute(
            f"SELECT COUNT(*) FROM {quote_identifier(name)}"
        )
        return int(cursor.fetchone()[0])

    @_uses_connection
    def collect_statistics(self) -> "StatisticsCatalog":
        """Statistics via ``ANALYZE``: row counts and distinct counts.

        ``ANALYZE`` populates ``sqlite_stat1`` with one row per index
        (``"nrow navg"``: total rows and average rows per distinct value of
        the index's first column, so ``distinct ≈ nrow / navg``) and one
        ``idx IS NULL`` row per unindexed table carrying the plain row
        count.  Columns no index covers are profiled with an exact
        ``COUNT(DISTINCT …)`` — the engine-side equivalent of what the
        memory backend computes by scanning its lists.
        """
        from ...cost.statistics import StatisticsCatalog, TableStatistics

        self._require_open()
        self._connection.execute("ANALYZE")
        stat_rows: Dict[str, int] = {}
        index_distinct: Dict[Tuple[str, str], float] = {}
        try:
            cursor = self._connection.execute(
                "SELECT tbl, idx, stat FROM sqlite_stat1"
            )
        except sqlite3.Error:
            cursor = iter(())
        for table, index, stat in cursor:
            parts = str(stat or "").split()
            if not parts or not parts[0].isdigit():
                continue
            nrow = int(parts[0])
            stat_rows[table] = max(stat_rows.get(table, 0), nrow)
            if index is None or len(parts) < 2 or not parts[1].isdigit():
                continue
            info = self._connection.execute(
                f"PRAGMA index_info({quote_identifier(index)})"
            ).fetchall()
            if info:
                first_column = info[0][2]
                per_value = max(1, int(parts[1]))
                index_distinct[(table, first_column)] = max(
                    1.0, nrow / float(per_value)
                )
        catalog = StatisticsCatalog()
        for name, columns in self._attributes.items():
            row_count = float(
                stat_rows[name] if name in stat_rows else self.cardinality(name)
            )
            distinct = []
            for column in columns:
                estimate = index_distinct.get((name, column))
                if estimate is None:
                    cursor = self._connection.execute(
                        f"SELECT COUNT(DISTINCT {quote_identifier(column)}) "
                        f"FROM {quote_identifier(name)}"
                    )
                    estimate = float(cursor.fetchone()[0])
                distinct.append(max(0.0, estimate))
            catalog.add(
                TableStatistics(
                    name=name,
                    row_count=row_count,
                    distinct_counts=tuple(distinct),
                )
            )
        return catalog

    # -- execution -----------------------------------------------------
    def compile_query(self, query: Query, distinct: bool = True) -> SQLQuery:
        """The parameterized SQL the backend will run for *query*."""
        if isinstance(query, UnionQuery):
            return render_union_sql_query(query, self._schema, distinct=distinct)
        return render_sql_query(query, self._schema, distinct=distinct)

    @_uses_connection
    def execute(self, query: Query, distinct: bool = True) -> List[Row]:
        self._require_open()
        self._check_relations(query)
        if self.auto_index:
            self.ensure_indexes(query)
        statement = self.compile_query(query, distinct=distinct)
        profile = current_profile()
        if profile:
            # The engine is a black box below the statement, so the row
            # counter sits on the statement node (estimate vs. the rows
            # the cursor actually produced); per-atom ``scan`` children
            # carry the real table cardinalities the statement read.
            node = profile.child(
                STATEMENT,
                getattr(query, "name", "<query>"),
                estimated_rows=self._profile_estimate(query),
                engine="sqlite",
            )
            self._attach_profile_scans(node, query)
        else:
            node = None
        try:
            cursor = self._connection.execute(statement.sql, statement.params)
            result = [tuple(row) for row in cursor.fetchall()]
        except sqlite3.Error as error:
            if node is not None:
                node.annotate(error=type(error).__name__)
                node.finish()
            if self._closed:
                # The connection was closed out from under a running query
                # (a replica killed mid-read): that is an engine failure,
                # not a query bug, so surface it as the StorageError the
                # replicated backend's failover reacts to.
                raise StorageError(
                    f"SQLiteBackend was closed during execution: {error}"
                ) from error
            raise EvaluationError(
                f"SQLite rejected the reformulation SQL: {error}\n{statement.sql}"
            ) from error
        if node is not None:
            node.finish(actual_rows=len(result))
        return result

    def _profile_distinct_count(self, name: str, position: int, rows: int) -> int:
        """Distinct values in one column (>= 1), memoized per row count."""
        key = (name, position)
        cached = self._distinct_cache.get(key)
        if cached is not None and cached[0] == rows:
            return cached[1]
        column = self._attributes[name][position]
        cursor = self._connection.execute(
            f"SELECT COUNT(DISTINCT {quote_identifier(column)}) "
            f"FROM {quote_identifier(name)}"
        )
        distinct = max(1, int(cursor.fetchone()[0]))
        self._distinct_cache[key] = (rows, distinct)
        return distinct

    def _profile_estimate(self, query: Query) -> float:
        """Uniformity-model result estimate (the memory backend's model).

        Only paid while a profile is active; the distinct counts it needs
        come from :attr:`_distinct_cache`.
        """
        if isinstance(query, UnionQuery):
            return sum(self._profile_estimate(disjunct) for disjunct in query)
        normalized = query.normalize_equalities()
        bound: Set[Variable] = set()
        estimate = 1.0
        for atom in normalized.relational_body:
            count = self.cardinality(atom.relation)
            selectivity = 1.0
            for position, term in enumerate(atom.terms):
                if not is_variable(term) or term in bound:
                    selectivity /= self._profile_distinct_count(
                        atom.relation, position, count
                    )
            estimate *= count * selectivity
            bound.update(term for term in atom.terms if is_variable(term))
        return estimate

    def _attach_profile_scans(self, node: "ProfileNode", query: Query) -> None:
        """Per-atom ``scan`` children (and ``union-branch`` grouping)."""
        if isinstance(query, UnionQuery):
            for position, disjunct in enumerate(query):
                branch = node.child(
                    UNION_BRANCH,
                    disjunct.name,
                    estimated_rows=self._profile_estimate(disjunct),
                    disjunct=position,
                )
                self._attach_profile_scans(branch, disjunct)
                branch.finish()
            return
        for atom in query.normalize_equalities().relational_body:
            scan = node.child(SCAN, atom.relation, relation=atom.relation)
            scan.finish(actual_rows=self.cardinality(atom.relation))

    def execute_union(self, union: Query, distinct: bool = True) -> List[Row]:
        """Run a whole union reformulation as one SQL statement (one round trip).

        :func:`~repro.storage.sql.render_union_sql_query` joins the disjuncts
        with ``UNION`` (set semantics) or ``UNION ALL`` (*distinct=False*, bag
        semantics), so the engine sees the entire reformulation at once
        instead of one ``execute`` per disjunct.
        """
        return self.execute(union, distinct=distinct)

    @_uses_connection
    def explain(self, query: Query) -> str:
        """SQLite's EXPLAIN QUERY PLAN for the compiled statement."""
        self._require_open()
        self._check_relations(query)
        if self.auto_index:
            self.ensure_indexes(query)
        statement = self.compile_query(query)
        cursor = self._connection.execute(
            "EXPLAIN QUERY PLAN " + statement.sql, statement.params
        )
        lines = [f"sqlite plan for {getattr(query, 'name', '<query>')}:"]
        for row in cursor.fetchall():
            lines.append(f"  {row[-1]}")
        return "\n".join(lines)

    def _check_relations(self, query: Query) -> None:
        disjuncts = query if isinstance(query, UnionQuery) else (query,)
        for disjunct in disjuncts:
            for relation in disjunct.relation_names():
                if relation not in self._arities:
                    raise EvaluationError(
                        f"query {disjunct.name} references unknown table {relation!r}"
                    )

    # -- indexing ------------------------------------------------------
    @_uses_connection
    def ensure_indexes(self, query: Query) -> List[str]:
        """Create indexes on the join/selection columns *query* touches.

        A column is worth indexing when its term is a constant (selection)
        or a variable shared between at least two atom positions (join key).
        Index creation is idempotent; the names created by this call are
        returned (useful for tests and the benchmarks).
        """
        self._require_open()
        created: List[str] = []
        disjuncts = query if isinstance(query, UnionQuery) else (query,)
        for disjunct in disjuncts:
            normalized = disjunct.normalize_equalities()
            occurrences: Dict[Variable, int] = {}
            for atom in normalized.relational_body:
                for term in atom.terms:
                    if is_variable(term):
                        occurrences[term] = occurrences.get(term, 0) + 1
            for atom in normalized.relational_body:
                attributes = self._attributes.get(atom.relation)
                if attributes is None:
                    continue
                for position, term in enumerate(atom.terms):
                    joinish = (not is_variable(term)) or occurrences[term] > 1
                    if not joinish:
                        continue
                    column = attributes[position]
                    key = (atom.relation, column)
                    if key in self._indexed:
                        continue
                    index_name = self._index_name(atom.relation, column)
                    try:
                        self._connection.execute(
                            f"CREATE INDEX IF NOT EXISTS {quote_identifier(index_name)} "
                            f"ON {quote_identifier(atom.relation)} "
                            f"({quote_identifier(column)})"
                        )
                    except sqlite3.Error as error:
                        if self._closed:
                            raise StorageError(
                                f"SQLiteBackend was closed during execution: {error}"
                            ) from error
                        raise EvaluationError(
                            f"could not index {atom.relation}.{column}: {error}"
                        ) from error
                    self._indexed.add(key)
                    created.append(index_name)
        if created:
            self._connection.commit()
        return created

    @staticmethod
    def _index_name(relation: str, column: str) -> str:
        slug = re.sub(r"[^A-Za-z0-9_]", "_", f"{relation}__{column}")
        return f"ix_{slug}"

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def clone_is_snapshot(self) -> bool:
        """Per-connection databases snapshot on clone; file databases share."""
        return self.path in (":memory:", "")

    def close(self) -> None:
        """Release the connection.  Closing twice raises :class:`StorageError`.

        Safe under concurrent use: the backend is marked closed at once
        (new operations raise :class:`StorageError` — the replicated
        backend's failover signal), but the underlying sqlite3 connection
        is only freed when the last in-flight operation exits — closing a
        connection another thread is actively stepping crashes the
        interpreter rather than raising.
        """
        release = False
        with self._state_lock:
            if self._closed:
                raise StorageError("SQLiteBackend.close() called twice")
            self._closed = True
            if self._inflight == 0:
                self._connection_released = True
                release = True
        if release:
            self._connection.close()

    @_uses_connection
    def clone(self) -> "SQLiteBackend":
        """A new backend over the same data, safe to hand to another thread.

        For an on-disk database the clone is simply a second connection to
        the same file.  For per-connection databases — ``:memory:`` and
        SQLite's unnamed temporary database (``path=""``) — a second
        connection would see a different, empty database, so the current
        contents are snapshotted into the clone with SQLite's online backup
        API and pooled read connections serve the data the template held at
        checkout-creation time.  Clones are created with
        ``check_same_thread=False`` — a pool checks a clone out to one
        thread at a time, which sqlite3 supports on any build.
        """
        self._require_open()
        clone = SQLiteBackend.__new__(SQLiteBackend)
        clone.path = self.path
        clone.check_same_thread = False
        clone._connection = sqlite3.connect(self.path, check_same_thread=False)
        clone._arities = dict(self._arities)
        clone._attributes = dict(self._attributes)
        clone._schema = _BackendSchema(clone._attributes)
        clone._indexed = set(self._indexed)
        clone.auto_index = self.auto_index
        clone._closed = False
        clone._state_lock = threading.Lock()
        clone._inflight = 0
        clone._connection_released = False
        clone._distinct_cache = {}
        if self.path in (":memory:", ""):
            self._connection.backup(clone._connection)
        return clone
