"""The in-memory backend: the original hash-join evaluator behind the API.

This wraps :class:`~repro.storage.relational_db.InMemoryDatabase` and
:func:`~repro.storage.evaluation.evaluate_query` without changing their
behaviour, so the default execution path of the reproduction is exactly
what it was before the backend abstraction existed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ...errors import StorageError
from ...logical.queries import ConjunctiveQuery, UnionQuery
from ...logical.terms import is_variable
from ..evaluation import evaluate_query, evaluate_union
from ..relational_db import InMemoryDatabase
from .base import Query, Row, StorageBackend


class MemoryBackend(StorageBackend):
    """Executes queries with the naive hash-join evaluator over Python lists.

    Statistics (``collect_statistics``, inherited) profile the same lists
    the hash-join evaluator scans, so cost estimates derived from a memory
    backend describe exactly the data it will join; :meth:`explain` uses
    the same distinct counts for its per-step cardinality estimates.

    When a query profile is active (``explain(analyze=True)`` or the
    service's 1-in-N sampler), the evaluator emits one ``scan``/
    ``join-step`` operator node per hash-join step — carrying the same
    uniformity-model estimate :meth:`explain` prints, now paired with the
    step's *actual* intermediate cardinality — into the ambient
    :func:`repro.profile.current_profile` sink.
    """

    backend_name = "memory"

    def __init__(self, database: Optional[InMemoryDatabase] = None):
        self.database = database or InMemoryDatabase()
        self._closed = False

    # -- schema and data loading ---------------------------------------
    def create_table(
        self, name: str, arity: int, attributes: Optional[Sequence[str]] = None
    ) -> None:
        self.database.create_table(name, arity, attributes)

    def has_table(self, name: str) -> bool:
        return self.database.has_table(name)

    def clear_table(self, name: str) -> None:
        self.database.clear_table(name)

    def insert_many(self, name: str, rows: Iterable[Sequence[object]]) -> None:
        self.database.insert_many(name, rows)

    def delete_many(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        return self.database.delete_many(name, rows)

    # -- inspection ----------------------------------------------------
    @property
    def table_names(self) -> Tuple[str, ...]:
        return self.database.table_names

    def rows(self, name: str) -> Sequence[Row]:
        return self.database.rows(name)

    def cardinalities(self) -> Dict[str, int]:
        return self.database.cardinalities()

    def cardinality(self, name: str) -> int:
        return self.database.cardinality(name)

    # -- execution -----------------------------------------------------
    def execute(self, query: Query, distinct: bool = True) -> List[Row]:
        if isinstance(query, UnionQuery):
            return evaluate_union(query, self.database, distinct=distinct)
        return evaluate_query(query, self.database, distinct=distinct)

    def execute_union(self, union: Query, distinct: bool = True) -> List[Row]:
        """One batch through :func:`evaluate_union` rather than per-disjunct."""
        return self.execute(union, distinct=distinct)

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Match the strict lifecycle of the other backends (symmetry for tests)."""
        if self._closed:
            raise StorageError("MemoryBackend.close() called twice")
        self._closed = True

    @property
    def clone_is_snapshot(self) -> bool:
        return True

    def clone(self) -> "MemoryBackend":
        """An independent snapshot of the tables, usable from any thread.

        Clones used to share the underlying tables; with a live write path
        they copy them instead, so pooled memory clones have the same
        point-in-time semantics as ``:memory:`` SQLite snapshots and catch
        up through the same mutation-log replay.
        """
        if self._closed:
            raise StorageError("cannot clone a closed MemoryBackend")
        return MemoryBackend(self.database.copy())

    def _distinct_count(self, relation: str, position: int) -> int:
        """Distinct values in one column of the stored data (>= 1)."""
        values = {row[position] for row in self.database.rows(relation)}
        return max(1, len(values))

    def explain(self, query: Query) -> str:
        """Describe the hash-join order with estimated cardinalities per step.

        Each step reports the estimated intermediate result size under the
        textbook uniformity model: joining/selecting on a probed column
        divides by that column's distinct-value count (computed from the
        actual data, so the estimates are the ones a cost-from-statistics
        estimator would derive from this backend).
        """
        if isinstance(query, UnionQuery):
            parts = [self.explain(disjunct) for disjunct in query]
            return "\nUNION\n".join(parts)
        query = query.normalize_equalities()
        lines = [f"hash-join pipeline for {query.name}:"]
        bound = set()
        estimate = 1.0
        for step, atom in enumerate(query.relational_body, start=1):
            probe_positions = [
                index
                for index, term in enumerate(atom.terms)
                if not is_variable(term) or term in bound
            ]
            count = self.database.cardinality(atom.relation)
            mode = (
                f"probe on positions {probe_positions}" if probe_positions else "scan"
            )
            selectivity = 1.0
            for position in probe_positions:
                selectivity /= self._distinct_count(atom.relation, position)
            estimate *= count * selectivity
            lines.append(
                f"  {step}. {atom.relation} [{count} rows, {mode}] "
                f"-> est. {estimate:.1f} rows"
            )
            bound.update(term for term in atom.terms if is_variable(term))
        if not query.relational_body:
            lines.append("  (no relational atoms: constant-only evaluation)")
        else:
            lines.append(
                f"  estimated result: {estimate:.1f} rows "
                "(before projection/dedup)"
            )
        return "\n".join(lines)
