"""The storage-backend abstraction: where reformulations actually execute.

MARS is middleware (paper Figure 2): it emits executable reformulations and
ships them to whatever engine holds the proprietary storage.  A
:class:`StorageBackend` is the reproduction's model of such an engine — a
relational store that can be loaded with the proprietary tables (base
relations, GReX encodings of stored XML documents, materialized view
extents) and asked to execute conjunctive queries or unions thereof.

Two implementations ship with the reproduction:

* :class:`~repro.storage.backends.memory.MemoryBackend` — the original
  in-memory hash-join evaluator, now behind the common interface;
* :class:`~repro.storage.backends.sqlite.SQLiteBackend` — a real RDBMS
  (stdlib ``sqlite3``) executing the parameterized SQL produced by
  :func:`~repro.storage.sql.render_sql_query`, which validates the SQL
  generation end-to-end.

Backends are registered by name so configurations, examples and benchmarks
can flip engines with a single string (``backend="sqlite"``).
"""

from __future__ import annotations

import abc
import collections
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

from ...errors import EvaluationError, StorageError
from ...logical.queries import ConjunctiveQuery, UnionQuery

Row = Tuple[object, ...]
Query = Union[ConjunctiveQuery, UnionQuery]


def default_backend_name() -> str:
    """The registry name used when no backend is specified.

    Reads the ``MARS_BACKEND`` environment variable (falling back to
    ``"memory"``), so a test matrix or a deployment can flip every
    default-configured executor onto another engine without code changes.
    """
    return os.environ.get("MARS_BACKEND", "memory") or "memory"


class StorageBackend(abc.ABC):
    """A named relational store that loads tuples and executes queries.

    The interface doubles as the *relational store* contract used by the
    upper layers (GReX materialization, XBind evaluation, statistics), so a
    backend can stand wherever an
    :class:`~repro.storage.relational_db.InMemoryDatabase` used to.
    """

    #: Registry name of the backend class (``"memory"``, ``"sqlite"``, ...).
    backend_name: str = "abstract"

    # -- schema and data loading ---------------------------------------
    @abc.abstractmethod
    def create_table(
        self, name: str, arity: int, attributes: Optional[Sequence[str]] = None
    ) -> None:
        """Declare table *name*; raises if it already exists."""

    @abc.abstractmethod
    def has_table(self, name: str) -> bool:
        ...

    @abc.abstractmethod
    def clear_table(self, name: str) -> None:
        """Delete every row of *name*, keeping the table declared."""

    @abc.abstractmethod
    def insert_many(self, name: str, rows: Iterable[Sequence[object]]) -> None:
        """Bulk-load *rows* into table *name*."""

    def insert(self, name: str, row: Sequence[object]) -> None:
        self.insert_many(name, [row])

    def delete_many(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        """Remove stored rows under bag semantics; returns how many went.

        Each requested row removes **at most one** stored occurrence (a
        table is an ordered multiset), and rows not present are ignored,
        so every engine agrees on multiplicities after a delete.  The
        default rewrites the table through :meth:`rows` /
        :meth:`clear_table` / :meth:`insert_many`; engines with targeted
        deletes override it (SQLite deletes by rowid).
        """
        pending = collections.Counter(tuple(row) for row in rows)
        if not pending:
            return 0
        kept: List[Row] = []
        removed = 0
        for row in self.rows(name):
            row = tuple(row)
            if pending.get(row, 0) > 0:
                pending[row] -= 1
                removed += 1
            else:
                kept.append(row)
        if removed:
            self.clear_table(name)
            if kept:
                self.insert_many(name, kept)
        return removed

    def apply(self, changeset: "ChangeSet") -> None:
        """Apply one :class:`~repro.replica.changeset.ChangeSet`.

        Per table change the deletes run before the inserts (an update is
        a delete plus an insert of the same row).  The default applies
        change-by-change with no atomicity guarantee beyond the individual
        operations; transactional engines override it (the SQLite backend
        wraps the whole change set in one transaction).
        """
        for change in changeset.changes:
            if not self.has_table(change.relation):
                raise EvaluationError(
                    f"change set references unknown table {change.relation!r}"
                )
            if change.deletes:
                self.delete_many(change.relation, change.deletes)
            if change.inserts:
                self.insert_many(change.relation, change.inserts)

    # -- inspection ----------------------------------------------------
    @property
    @abc.abstractmethod
    def table_names(self) -> Tuple[str, ...]:
        ...

    @abc.abstractmethod
    def rows(self, name: str) -> Sequence[Row]:
        """The current rows of table *name* (multiset, insertion order)."""

    @abc.abstractmethod
    def cardinalities(self) -> Dict[str, int]:
        """Mapping of table name to row count, used by the cost estimators."""

    def cardinality(self, name: str) -> int:
        """Number of rows in *name* (0 if the table does not exist)."""
        if not self.has_table(name):
            return 0
        return len(self.rows(name))

    def collect_statistics(self) -> "StatisticsCatalog":
        """Measure a :class:`~repro.cost.statistics.StatisticsCatalog`.

        The default profiles every table through :meth:`rows` — exact row
        counts and per-column distinct counts.  Engines with native
        statistics machinery override this (the SQLite backend reads
        ``ANALYZE``'s ``sqlite_stat1``, the sharded backend merges its
        children's catalogs).
        """
        from ...cost.statistics import StatisticsCatalog, profile_rows

        catalog = StatisticsCatalog()
        for name in self.table_names:
            catalog.add(profile_rows(name, self.rows(name)))
        return catalog

    # -- execution -----------------------------------------------------
    @abc.abstractmethod
    def execute(self, query: Query, distinct: bool = True) -> List[Row]:
        """Execute a conjunctive query or a union and return the head tuples."""

    def execute_union(self, union: Query, distinct: bool = True) -> List[Row]:
        """Execute a whole :class:`UnionQuery` as one batch.

        Backends that can push the union through the engine in a single
        round trip (one SQL ``UNION`` statement) override this; the default
        runs one :meth:`execute` per disjunct and combines the answers,
        de-duplicating across disjuncts when *distinct* is set.
        """
        if isinstance(union, ConjunctiveQuery):
            return self.execute(union, distinct=distinct)
        combined: List[Row] = []
        seen: set = set()
        for disjunct in union:
            for row in self.execute(disjunct, distinct=distinct):
                if distinct:
                    if row in seen:
                        continue
                    seen.add(row)
                combined.append(row)
        return combined

    @abc.abstractmethod
    def explain(self, query: Query) -> str:
        """A human-readable account of how the backend would run *query*."""

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called on this backend."""
        return False

    def close(self) -> None:
        """Release engine resources; the default implementation is a no-op."""

    @property
    def clone_is_snapshot(self) -> bool:
        """Whether :meth:`clone` produces a point-in-time *snapshot*.

        ``True`` means a clone stops seeing later writes to the original
        (memory clones copy the tables, ``:memory:`` SQLite clones are
        backup-API snapshots) and must catch up by replaying a
        :class:`~repro.replica.changeset.MutationLog` tail; ``False``
        means clones share the stored data (a second connection to the
        same on-disk SQLite file) and see committed writes directly.  The
        connection pool uses this to decide whether pooled clones need
        log-replay catch-up at checkout.
        """
        return False

    def clone(self) -> "StorageBackend":
        """A new backend over the same stored data, usable from another thread.

        Connection pools build their per-checkout handles with this.  The
        clone shares (or snapshots) the data of the original but owns its
        own engine resources, so it must be :meth:`close`\\ d independently.
        Backends without a meaningful notion of a second handle raise
        :class:`~repro.errors.StorageError`.
        """
        raise StorageError(
            f"{type(self).__name__} does not support cloning; "
            "it cannot be pooled"
        )

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self.closed:
            self.close()

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    def __str__(self) -> str:
        parts = ", ".join(
            f"{name}({count})" for name, count in sorted(self.cardinalities().items())
        )
        return f"{type(self).__name__}[{parts}]"


# ----------------------------------------------------------------------
# Registry and factory
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[StorageBackend]] = {}


def register_backend(name: str, backend_class: Type[StorageBackend]) -> None:
    """Register *backend_class* under *name* for :func:`create_backend`."""
    _REGISTRY[name] = backend_class
    backend_class.backend_name = name


def available_backends() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def create_backend(
    spec: Union[str, StorageBackend, Type[StorageBackend], None] = None,
    **kwargs: object,
) -> StorageBackend:
    """Resolve *spec* into a live backend instance.

    ``None`` means the default (:func:`default_backend_name`, i.e. the
    ``MARS_BACKEND`` environment variable or ``"memory"``); a string is
    looked up in the registry; a class is instantiated; an existing instance
    is returned unchanged (keyword arguments are then rejected).
    """
    if spec is None:
        spec = default_backend_name()
    if isinstance(spec, StorageBackend):
        if kwargs:
            raise EvaluationError(
                "cannot apply constructor arguments to an existing backend instance"
            )
        return spec
    if isinstance(spec, type) and issubclass(spec, StorageBackend):
        return spec(**kwargs)
    if isinstance(spec, str):
        try:
            backend_class = _REGISTRY[spec]
        except KeyError as error:
            raise EvaluationError(
                f"unknown storage backend {spec!r}; "
                f"available: {', '.join(available_backends())}"
            ) from error
        return backend_class(**kwargs)
    raise EvaluationError(f"cannot interpret backend specification {spec!r}")
