"""Cardinality statistics used by the plug-in cost estimators.

MARS compares candidate reformulations with a *plug-in* cost estimator
(paper Figure 2).  The estimators shipped with the reproduction consume a
:class:`TableStatistics` object that records per-relation cardinalities and
optional per-relation access costs (e.g. native-XML navigation being more
expensive than a relational scan).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .relational_db import InMemoryDatabase

DEFAULT_CARDINALITY = 1000.0


@dataclass
class TableStatistics:
    """Per-relation cardinalities and access-cost weights."""

    cardinalities: Dict[str, float] = field(default_factory=dict)
    access_weights: Dict[str, float] = field(default_factory=dict)
    default_cardinality: float = DEFAULT_CARDINALITY
    default_weight: float = 1.0

    @classmethod
    def from_database(
        cls,
        database: InMemoryDatabase,
        access_weights: Optional[Mapping[str, float]] = None,
    ) -> "TableStatistics":
        """Collect cardinalities from an in-memory database."""
        stats = cls(cardinalities=dict(database.cardinalities()))
        if access_weights:
            stats.access_weights.update(access_weights)
        return stats

    def cardinality(self, relation: str) -> float:
        """Estimated number of tuples in *relation*."""
        return float(self.cardinalities.get(relation, self.default_cardinality))

    def weight(self, relation: str) -> float:
        """Access-cost multiplier for *relation* (native XML relations cost more)."""
        return float(self.access_weights.get(relation, self.default_weight))

    def set_cardinality(self, relation: str, value: float) -> None:
        self.cardinalities[relation] = float(value)

    def set_weight(self, relation: str, value: float) -> None:
        self.access_weights[relation] = float(value)

    def scan_cost(self, relation: str) -> float:
        """Cost of a full scan of *relation* under the weights."""
        return self.cardinality(relation) * self.weight(relation)
