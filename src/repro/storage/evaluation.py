"""Evaluation of conjunctive queries over the in-memory database.

The evaluator performs a left-to-right sequence of hash joins over the
relational atoms of the query body, then filters with inequality atoms and
projects onto the head.  The same machinery is reused (over *symbolic*
instances) by the set-oriented chase implementation; here it runs over real
data to execute reformulations and to verify their equivalence in tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import EvaluationError
from ..logical.atoms import EqualityAtom, InequalityAtom, RelationalAtom
from ..logical.queries import ConjunctiveQuery, UnionQuery
from ..logical.terms import Constant, Term, Variable, is_variable
from .relational_db import InMemoryDatabase, Row

Binding = Dict[Variable, object]


def _match_atom(atom: RelationalAtom, row: Row, binding: Binding) -> Optional[Binding]:
    """Try to extend *binding* so the atom's terms match *row*; return None on clash."""
    extended = dict(binding)
    for term, value in zip(atom.terms, row):
        if is_variable(term):
            bound = extended.get(term, _MISSING)
            if bound is _MISSING:
                extended[term] = value
            elif bound != value:
                return None
        else:
            if term.value != value:
                return None
    return extended


_MISSING = object()


def _atom_join_key(atom: RelationalAtom, bound_vars: Iterable[Variable]) -> List[int]:
    """Positions of the atom's terms that are already bound (or constants)."""
    bound = set(bound_vars)
    positions = []
    for index, term in enumerate(atom.terms):
        if not is_variable(term) or term in bound:
            positions.append(index)
    return positions


def evaluate_query(
    query: ConjunctiveQuery,
    database: InMemoryDatabase,
    distinct: bool = True,
) -> List[Row]:
    """Evaluate *query* over *database* and return the list of head tuples.

    The join order is the textual order of the body atoms; for each atom a
    hash index is built on the positions already bound by earlier atoms,
    giving hash-join behaviour without materializing intermediate tables.
    """
    query = query.normalize_equalities()
    bindings: List[Binding] = [{}]
    bound_vars: List[Variable] = []
    for atom in query.relational_body:
        if not database.has_table(atom.relation):
            raise EvaluationError(
                f"query {query.name} references unknown table {atom.relation!r}"
            )
        rows = database.table(atom.relation).rows
        key_positions = _atom_join_key(atom, bound_vars)
        index: Dict[Tuple[object, ...], List[Row]] = {}
        for row in rows:
            key = tuple(row[position] for position in key_positions)
            index.setdefault(key, []).append(row)
        new_bindings: List[Binding] = []
        for binding in bindings:
            key_values = []
            for position in key_positions:
                term = atom.terms[position]
                if is_variable(term):
                    key_values.append(binding[term])
                else:
                    key_values.append(term.value)
            for row in index.get(tuple(key_values), ()):  # hash probe
                extended = _match_atom(atom, row, binding)
                if extended is not None:
                    new_bindings.append(extended)
        bindings = new_bindings
        for term in atom.terms:
            if is_variable(term) and term not in bound_vars:
                bound_vars.append(term)
        if not bindings:
            break

    results: List[Row] = []
    seen = set()
    for binding in bindings:
        if not _satisfies_filters(query, binding):
            continue
        row = _project_head(query, binding)
        if distinct:
            if row in seen:
                continue
            seen.add(row)
        results.append(row)
    return results


def _satisfies_filters(query: ConjunctiveQuery, binding: Binding) -> bool:
    for atom in query.body:
        if isinstance(atom, InequalityAtom):
            if _term_value(atom.left, binding) == _term_value(atom.right, binding):
                return False
        elif isinstance(atom, EqualityAtom):
            if _term_value(atom.left, binding) != _term_value(atom.right, binding):
                return False
    return True


def _term_value(term: Term, binding: Binding) -> object:
    if is_variable(term):
        if term not in binding:
            raise EvaluationError(f"unbound variable {term} in filter")
        return binding[term]
    return term.value


def _project_head(query: ConjunctiveQuery, binding: Binding) -> Row:
    values = []
    for term in query.head:
        values.append(_term_value(term, binding))
    return tuple(values)


def evaluate_union(
    union: UnionQuery, database: InMemoryDatabase, distinct: bool = True
) -> List[Row]:
    """Evaluate a union of conjunctive queries (set semantics when *distinct*)."""
    results: List[Row] = []
    seen = set()
    for disjunct in union:
        for row in evaluate_query(disjunct, database, distinct=distinct):
            if distinct:
                if row in seen:
                    continue
                seen.add(row)
            results.append(row)
    return results


def materialize_view(
    name: str,
    query: ConjunctiveQuery,
    database: InMemoryDatabase,
) -> None:
    """Evaluate *query* and store its result as table *name* in *database*.

    This is how the redundant storage of the paper's scenarios is created:
    materialized views are ordinary tables whose contents are the result of
    their defining queries over the base data.
    """
    rows = evaluate_query(query, database)
    if database.has_table(name):
        table = database.table(name)
        table.clear()
    else:
        table = database.create_table(name, len(query.head))
    table.insert_many(rows)
