"""Evaluation of conjunctive queries over the in-memory database.

The evaluator performs a left-to-right sequence of hash joins over the
relational atoms of the query body, then filters with inequality atoms and
projects onto the head.  The same machinery is reused (over *symbolic*
instances) by the set-oriented chase implementation; here it runs over real
data to execute reformulations and to verify their equivalence in tests.

When a query profile is active (:func:`repro.profile.current_profile`),
each hash-join step emits one ``scan``/``join-step`` operator node with
its intermediate binding count as ``actual_rows`` and the textbook
uniformity estimate — the same model :meth:`MemoryBackend.explain`
prints — as ``estimated_rows``; union evaluation wraps each disjunct in
a ``union-branch`` node.  Estimates (the distinct-count passes) are only
computed while a profile is live, so unprofiled evaluation pays nothing
beyond one ambient lookup per query.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import EvaluationError
from ..logical.atoms import EqualityAtom, InequalityAtom, RelationalAtom
from ..logical.queries import ConjunctiveQuery, UnionQuery
from ..logical.terms import Constant, Term, Variable, is_variable
from ..profile import JOIN_STEP, SCAN, UNION_BRANCH, current_profile
from .relational_db import InMemoryDatabase, Row

Binding = Dict[Variable, object]


def _match_atom(atom: RelationalAtom, row: Row, binding: Binding) -> Optional[Binding]:
    """Try to extend *binding* so the atom's terms match *row*; return None on clash."""
    extended = dict(binding)
    for term, value in zip(atom.terms, row):
        if is_variable(term):
            bound = extended.get(term, _MISSING)
            if bound is _MISSING:
                extended[term] = value
            elif bound != value:
                return None
        else:
            if term.value != value:
                return None
    return extended


_MISSING = object()


def _atom_join_key(atom: RelationalAtom, bound_vars: Iterable[Variable]) -> List[int]:
    """Positions of the atom's terms that are already bound (or constants)."""
    bound = set(bound_vars)
    positions = []
    for index, term in enumerate(atom.terms):
        if not is_variable(term) or term in bound:
            positions.append(index)
    return positions


def evaluate_query(
    query: ConjunctiveQuery,
    database: InMemoryDatabase,
    distinct: bool = True,
) -> List[Row]:
    """Evaluate *query* over *database* and return the list of head tuples.

    The join order is the textual order of the body atoms; for each atom a
    hash index is built on the positions already bound by earlier atoms,
    giving hash-join behaviour without materializing intermediate tables.
    """
    query = query.normalize_equalities()
    profile = current_profile()
    estimate = 1.0
    bindings: List[Binding] = [{}]
    bound_vars: List[Variable] = []
    for step, atom in enumerate(query.relational_body, start=1):
        if not database.has_table(atom.relation):
            raise EvaluationError(
                f"query {query.name} references unknown table {atom.relation!r}"
            )
        rows = database.table(atom.relation).rows
        key_positions = _atom_join_key(atom, bound_vars)
        if profile:
            # Uniformity-model estimate, the same arithmetic as
            # MemoryBackend.explain: each probed column divides the
            # running cardinality by its distinct-value count.
            selectivity = 1.0
            for position in key_positions:
                distinct = len({row[position] for row in rows})
                selectivity /= max(1, distinct)
            estimate *= len(rows) * selectivity
            node = profile.child(
                JOIN_STEP if key_positions else SCAN,
                f"{atom.relation}[step {step}]",
                estimated_rows=estimate,
                relation=atom.relation,
                probe_positions=tuple(key_positions),
            )
        else:
            node = None
        index: Dict[Tuple[object, ...], List[Row]] = {}
        for row in rows:
            key = tuple(row[position] for position in key_positions)
            index.setdefault(key, []).append(row)
        new_bindings: List[Binding] = []
        for binding in bindings:
            key_values = []
            for position in key_positions:
                term = atom.terms[position]
                if is_variable(term):
                    key_values.append(binding[term])
                else:
                    key_values.append(term.value)
            for row in index.get(tuple(key_values), ()):  # hash probe
                extended = _match_atom(atom, row, binding)
                if extended is not None:
                    new_bindings.append(extended)
        bindings = new_bindings
        if node is not None:
            node.finish(actual_rows=len(bindings))
        for term in atom.terms:
            if is_variable(term) and term not in bound_vars:
                bound_vars.append(term)
        if not bindings:
            break

    results: List[Row] = []
    seen = set()
    for binding in bindings:
        if not _satisfies_filters(query, binding):
            continue
        row = _project_head(query, binding)
        if distinct:
            if row in seen:
                continue
            seen.add(row)
        results.append(row)
    return results


def _satisfies_filters(query: ConjunctiveQuery, binding: Binding) -> bool:
    for atom in query.body:
        if isinstance(atom, InequalityAtom):
            if _term_value(atom.left, binding) == _term_value(atom.right, binding):
                return False
        elif isinstance(atom, EqualityAtom):
            if _term_value(atom.left, binding) != _term_value(atom.right, binding):
                return False
    return True


def _term_value(term: Term, binding: Binding) -> object:
    if is_variable(term):
        if term not in binding:
            raise EvaluationError(f"unbound variable {term} in filter")
        return binding[term]
    return term.value


def _project_head(query: ConjunctiveQuery, binding: Binding) -> Row:
    values = []
    for term in query.head:
        values.append(_term_value(term, binding))
    return tuple(values)


def evaluate_union(
    union: UnionQuery, database: InMemoryDatabase, distinct: bool = True
) -> List[Row]:
    """Evaluate a union of conjunctive queries (set semantics when *distinct*)."""
    profile = current_profile()
    results: List[Row] = []
    seen = set()
    for position, disjunct in enumerate(union):
        if profile:
            with profile.child(
                UNION_BRANCH, disjunct.name, disjunct=position
            ) as branch:
                produced = evaluate_query(disjunct, database, distinct=distinct)
                branch.finish(actual_rows=len(produced))
        else:
            produced = evaluate_query(disjunct, database, distinct=distinct)
        for row in produced:
            if distinct:
                if row in seen:
                    continue
                seen.add(row)
            results.append(row)
    return results


def materialize_view(
    name: str,
    query: ConjunctiveQuery,
    database: InMemoryDatabase,
) -> None:
    """Evaluate *query* and store its result as table *name* in *database*.

    This is how the redundant storage of the paper's scenarios is created:
    materialized views are ordinary tables whose contents are the result of
    their defining queries over the base data.
    """
    rows = evaluate_query(query, database)
    if database.has_table(name):
        table = database.table(name)
        table.clear()
    else:
        table = database.create_table(name, len(query.head))
    table.insert_many(rows)
