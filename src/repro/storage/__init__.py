"""Relational storage: in-memory engine, SQL rendering, pluggable backends.

This package owns everything between a finished reformulation and its
rows:

* :mod:`repro.storage.relational_db` / :mod:`repro.storage.evaluation` —
  the original in-memory tables and hash-join evaluator;
* :mod:`repro.storage.sql` — display SQL (``render_sql``) and
  parameterized executable SQL (``render_sql_query`` /
  ``render_union_sql_query``) for real engines;
* :mod:`repro.storage.backends` — the :class:`StorageBackend` protocol
  and registry (``memory`` / ``sqlite`` / ``sharded``); backends load
  tables, execute queries, ``explain`` themselves, ``clone()`` for
  connection pooling and ``collect_statistics()`` for the cost model;
* :mod:`repro.storage.statistics` — the legacy cardinality/weight record
  consumed by the engine-internal estimators (the richer catalogs live in
  :mod:`repro.cost`).

Entry points: ``create_backend(spec)`` resolves a backend, and
``MarsConfiguration.backend`` / ``MARS_BACKEND`` select the default.
"""

from .backends import (
    MemoryBackend,
    SQLiteBackend,
    ShardedBackend,
    StorageBackend,
    available_backends,
    create_backend,
    register_backend,
)
from .evaluation import evaluate_query, evaluate_union, materialize_view
from .relational_db import InMemoryDatabase, Table
from .sql import (
    SQLQuery,
    render_sql,
    render_sql_query,
    render_union_sql,
    render_union_sql_query,
)
from .statistics import TableStatistics

__all__ = [
    "InMemoryDatabase",
    "MemoryBackend",
    "SQLQuery",
    "SQLiteBackend",
    "ShardedBackend",
    "StorageBackend",
    "Table",
    "TableStatistics",
    "available_backends",
    "create_backend",
    "evaluate_query",
    "evaluate_union",
    "materialize_view",
    "register_backend",
    "render_sql",
    "render_sql_query",
    "render_union_sql",
    "render_union_sql_query",
]
