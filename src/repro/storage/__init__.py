"""Relational storage: in-memory engine, SQL rendering, pluggable backends."""

from .backends import (
    MemoryBackend,
    SQLiteBackend,
    ShardedBackend,
    StorageBackend,
    available_backends,
    create_backend,
    register_backend,
)
from .evaluation import evaluate_query, evaluate_union, materialize_view
from .relational_db import InMemoryDatabase, Table
from .sql import (
    SQLQuery,
    render_sql,
    render_sql_query,
    render_union_sql,
    render_union_sql_query,
)
from .statistics import TableStatistics

__all__ = [
    "InMemoryDatabase",
    "MemoryBackend",
    "SQLQuery",
    "SQLiteBackend",
    "ShardedBackend",
    "StorageBackend",
    "Table",
    "TableStatistics",
    "available_backends",
    "create_backend",
    "evaluate_query",
    "evaluate_union",
    "materialize_view",
    "register_backend",
    "render_sql",
    "render_sql_query",
    "render_union_sql",
    "render_union_sql_query",
]
