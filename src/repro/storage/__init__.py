"""In-memory relational storage engine and query execution."""

from .evaluation import evaluate_query, evaluate_union, materialize_view
from .relational_db import InMemoryDatabase, Table
from .sql import render_sql, render_union_sql
from .statistics import TableStatistics

__all__ = [
    "InMemoryDatabase",
    "Table",
    "TableStatistics",
    "evaluate_query",
    "evaluate_union",
    "materialize_view",
    "render_sql",
    "render_union_sql",
]
