"""A small in-memory relational database.

MARS itself is middleware: it reformulates queries and ships them to real
engines.  For the reproduction we need an actual substrate to execute both
the original and the reformulated queries, so correctness of reformulations
can be verified end-to-end and execution-time savings can be measured.  This
module provides that substrate: named tables holding tuples, with optional
attribute names taken from a :class:`~repro.logical.schema.RelationalSchema`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import EvaluationError, SchemaError
from ..logical.schema import Relation, RelationalSchema

Row = Tuple[object, ...]


class Table:
    """A named table: an ordered multiset of fixed-arity tuples."""

    def __init__(self, name: str, arity: int, attributes: Optional[Sequence[str]] = None):
        if attributes is not None and len(attributes) != arity:
            raise SchemaError(f"table {name}: attribute count does not match arity")
        self.name = name
        self.arity = arity
        self.attributes = tuple(attributes) if attributes else tuple(
            f"c{i}" for i in range(arity)
        )
        self._rows: List[Row] = []

    def insert(self, row: Sequence[object]) -> None:
        """Append *row*, validating its arity."""
        row = tuple(row)
        if len(row) != self.arity:
            raise EvaluationError(
                f"table {self.name}: expected {self.arity} values, got {len(row)}"
            )
        self._rows.append(row)

    def insert_many(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.insert(row)

    def clear(self) -> None:
        self._rows.clear()

    def delete_many(self, rows: Iterable[Sequence[object]]) -> int:
        """Remove at most one stored occurrence per requested row (bag delete)."""
        from collections import Counter

        pending = Counter(tuple(row) for row in rows)
        if not pending:
            return 0
        kept: List[Row] = []
        removed = 0
        for row in self._rows:
            if pending.get(row, 0) > 0:
                pending[row] -= 1
                removed += 1
            else:
                kept.append(row)
        if removed:
            self._rows = kept
        return removed

    def copy(self) -> "Table":
        """An independent table holding the same rows (snapshot)."""
        duplicate = Table(self.name, self.arity, self.attributes)
        duplicate._rows = list(self._rows)
        return duplicate

    @property
    def rows(self) -> Tuple[Row, ...]:
        return tuple(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __str__(self) -> str:
        return f"{self.name}[{len(self)} rows]"


class InMemoryDatabase:
    """A collection of named tables, optionally validated against a schema."""

    def __init__(self, schema: Optional[RelationalSchema] = None):
        self.schema = schema
        self._tables: Dict[str, Table] = {}
        if schema is not None:
            for relation in schema.relations:
                self.create_table(relation.name, relation.arity, relation.attributes)

    # ------------------------------------------------------------------
    def create_table(
        self, name: str, arity: int, attributes: Optional[Sequence[str]] = None
    ) -> Table:
        if name in self._tables:
            raise SchemaError(f"table {name} already exists")
        table = Table(name, arity, attributes)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError as error:
            raise EvaluationError(f"unknown table {name!r}") from error

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def insert(self, name: str, row: Sequence[object]) -> None:
        self.table(name).insert(row)

    def insert_many(self, name: str, rows: Iterable[Sequence[object]]) -> None:
        self.table(name).insert_many(rows)

    def clear_table(self, name: str) -> None:
        """Delete every row of *name* (the table itself remains declared)."""
        self.table(name).clear()

    def delete_many(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        """Bag-semantics delete: each row removes at most one occurrence."""
        return self.table(name).delete_many(rows)

    def copy(self) -> "InMemoryDatabase":
        """An independent database holding snapshots of every table."""
        duplicate = InMemoryDatabase()
        duplicate.schema = self.schema
        for name, table in self._tables.items():
            duplicate._tables[name] = table.copy()
        return duplicate

    def rows(self, name: str) -> Tuple[Row, ...]:
        """The rows of table *name*, in insertion order."""
        return self.table(name).rows

    def cardinality(self, name: str) -> int:
        """Number of rows in *name* (0 if the table does not exist)."""
        if name not in self._tables:
            return 0
        return len(self._tables[name])

    @property
    def table_names(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    def cardinalities(self) -> Dict[str, int]:
        """Mapping of table name to row count, used by the default cost model."""
        return {name: len(table) for name, table in self._tables.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __str__(self) -> str:
        parts = ", ".join(f"{name}({len(table)})" for name, table in self._tables.items())
        return f"InMemoryDatabase[{parts}]"
