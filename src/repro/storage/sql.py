"""Rendering of conjunctive queries as SQL — display text and executable form.

The reformulations MARS produces over the relational part of the
proprietary storage are ultimately shipped to an RDBMS.  This module turns
a :class:`~repro.logical.queries.ConjunctiveQuery` into a ``SELECT``
statement, which is the "executable reformulation (SQL)" artifact of the
paper's Figure 2.  Two renderings are provided:

* :func:`render_sql` — human-readable text with constants inlined as
  literals, shown by the examples and stored on
  :class:`~repro.core.reformulation.MarsReformulation`;
* :func:`render_sql_query` — a :class:`SQLQuery` pair of a parameterized
  statement (``qmark`` style placeholders) and its parameter tuple, which
  the SQLite storage backend executes directly.

Queries with no relational atoms (the FROM clause would be empty) and
queries whose heads are constant-only both render valid SQL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..logical.atoms import EqualityAtom, InequalityAtom, RelationalAtom
from ..logical.queries import ConjunctiveQuery, UnionQuery
from ..logical.schema import RelationalSchema
from ..logical.terms import Term, Variable, is_variable


@dataclass(frozen=True)
class SQLQuery:
    """A parameterized SQL statement and its parameters, ready to execute."""

    sql: str
    params: Tuple[object, ...] = ()

    def __str__(self) -> str:
        return self.sql


def quote_identifier(name: str) -> str:
    """Quote *name* as a SQL identifier (double quotes, doubled if embedded)."""
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def _attribute_name(
    schema: Optional[RelationalSchema], relation: str, position: int
) -> str:
    if schema is not None and relation in schema:
        return schema.relation(relation).attributes[position]
    return f"c{position}"


class _SQLBuilder:
    """Shared SELECT assembly for the literal and parameterized renderings.

    With ``parameterize=True`` constants become ``?`` placeholders collected
    into :attr:`params` in the order the placeholders appear in the statement
    (SELECT list first, then WHERE predicates); identifiers are quoted so
    GReX relation names and arbitrary attribute names are always valid.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        schema: Optional[RelationalSchema],
        parameterize: bool,
    ):
        self.schema = schema
        self.parameterize = parameterize
        self.query = query.normalize_equalities()
        self.variable_columns: Dict[Variable, str] = {}
        self.aliases: List[Tuple[str, str]] = []
        self.select_params: List[object] = []
        self.predicate_params: List[object] = []

    # ------------------------------------------------------------------
    def _column(self, alias: str, relation: str, position: int) -> str:
        attribute = _attribute_name(self.schema, relation, position)
        if self.parameterize:
            return f"{quote_identifier(alias)}.{quote_identifier(attribute)}"
        return f"{alias}.{attribute}"

    def _value(self, value: object, params: List[object]) -> str:
        if self.parameterize:
            params.append(value)
            return "?"
        return _literal(value)

    def _term(self, term: Term, params: List[object]) -> str:
        if is_variable(term):
            column = self.variable_columns.get(term)
            if column is not None:
                return column
            # A head/filter variable not bound by any relational atom: the
            # query is unsafe, but the SQL must still be well formed.
            if self.parameterize:
                return "NULL"
            return f"/* unbound {term} */ NULL"
        return self._value(term.value, params)

    # ------------------------------------------------------------------
    def build(self, distinct: bool = True) -> Tuple[str, Tuple[object, ...]]:
        query = self.query
        predicates: List[str] = []
        for index, atom in enumerate(query.relational_body):
            alias = f"t{index}"
            self.aliases.append((atom.relation, alias))
            for position, term in enumerate(atom.terms):
                column = self._column(alias, atom.relation, position)
                if is_variable(term):
                    if term in self.variable_columns:
                        predicates.append(
                            f"{self.variable_columns[term]} = {column}"
                        )
                    else:
                        self.variable_columns[term] = column
                else:
                    predicates.append(
                        f"{column} = {self._value(term.value, self.predicate_params)}"
                    )

        for atom in query.body:
            if isinstance(atom, InequalityAtom):
                predicates.append(
                    f"{self._term(atom.left, self.predicate_params)} <> "
                    f"{self._term(atom.right, self.predicate_params)}"
                )
            elif isinstance(atom, EqualityAtom):
                predicates.append(
                    f"{self._term(atom.left, self.predicate_params)} = "
                    f"{self._term(atom.right, self.predicate_params)}"
                )

        select_items = [
            f"{self._term(term, self.select_params)} AS h{position}"
            for position, term in enumerate(query.head)
        ]
        keyword = "SELECT DISTINCT " if distinct else "SELECT "
        select_clause = keyword + (", ".join(select_items) if select_items else "1")
        clauses = [select_clause]
        if self.aliases:
            if self.parameterize:
                from_items = [
                    f"{quote_identifier(relation)} {quote_identifier(alias)}"
                    for relation, alias in self.aliases
                ]
            else:
                from_items = [f"{relation} {alias}" for relation, alias in self.aliases]
            clauses.append("FROM " + ", ".join(from_items))
        if predicates:
            clauses.append("WHERE " + "\n  AND ".join(predicates))
        return "\n".join(clauses), tuple(self.select_params + self.predicate_params)


def render_sql(
    query: ConjunctiveQuery, schema: Optional[RelationalSchema] = None
) -> str:
    """Render *query* as a SQL SELECT statement for display.

    Each relational atom becomes an aliased table in the FROM clause;
    repeated variables become equality predicates in the WHERE clause;
    constants become equality predicates against literals; the head becomes
    the SELECT list.  Queries with no relational atoms omit the FROM clause
    entirely, so constant-only queries still render valid SQL.
    """
    sql, _ = _SQLBuilder(query, schema, parameterize=False).build()
    return sql


def render_sql_query(
    query: ConjunctiveQuery,
    schema: Optional[RelationalSchema] = None,
    distinct: bool = True,
) -> SQLQuery:
    """Render *query* as executable parameterized SQL (``qmark`` placeholders)."""
    sql, params = _SQLBuilder(query, schema, parameterize=True).build(distinct=distinct)
    return SQLQuery(sql, params)


def render_union_sql(
    union: UnionQuery, schema: Optional[RelationalSchema] = None
) -> str:
    """Render a union of conjunctive queries as SQL with UNION."""
    return "\nUNION\n".join(render_sql(disjunct, schema) for disjunct in union)


def render_union_sql_query(
    union: UnionQuery,
    schema: Optional[RelationalSchema] = None,
    distinct: bool = True,
) -> SQLQuery:
    """Render a union as one executable statement (UNION / UNION ALL).

    Parameters are concatenated in disjunct order, so the statement executes
    the whole reformulation in a single round trip.  With *distinct* the
    disjuncts are joined by ``UNION``, whose set semantics already
    de-duplicate across (and within) branches, so the per-disjunct
    ``DISTINCT`` is skipped as redundant; without it the branches keep bag
    semantics and are joined by ``UNION ALL``.
    """
    if len(union) == 1:
        return render_sql_query(union.disjuncts[0], schema, distinct=distinct)
    rendered = [
        render_sql_query(disjunct, schema, distinct=False) for disjunct in union
    ]
    connector = "\nUNION\n" if distinct else "\nUNION ALL\n"
    sql = connector.join(part.sql for part in rendered)
    params: Tuple[object, ...] = ()
    for part in rendered:
        params += part.params
    return SQLQuery(sql, params)


def _literal(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)
