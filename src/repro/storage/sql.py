"""Rendering of conjunctive queries as SQL text.

The reformulations MARS produces over the relational part of the
proprietary storage are ultimately shipped to an RDBMS.  This module turns
a :class:`~repro.logical.queries.ConjunctiveQuery` into a ``SELECT``
statement, which is the "executable reformulation (SQL)" artifact of the
paper's Figure 2.  The in-memory engine does not parse this SQL; it exists
so users (and the examples) can see exactly what would be sent to a real
database.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..logical.atoms import EqualityAtom, InequalityAtom, RelationalAtom
from ..logical.queries import ConjunctiveQuery, UnionQuery
from ..logical.schema import RelationalSchema
from ..logical.terms import Term, Variable, is_variable


def _attribute_name(
    schema: Optional[RelationalSchema], relation: str, position: int
) -> str:
    if schema is not None and relation in schema:
        return schema.relation(relation).attributes[position]
    return f"c{position}"


def render_sql(
    query: ConjunctiveQuery, schema: Optional[RelationalSchema] = None
) -> str:
    """Render *query* as a SQL SELECT statement.

    Each relational atom becomes an aliased table in the FROM clause;
    repeated variables become equality predicates in the WHERE clause;
    constants become equality predicates against literals; the head becomes
    the SELECT list.
    """
    query = query.normalize_equalities()
    aliases: List[Tuple[str, str]] = []
    variable_columns: Dict[Variable, str] = {}
    predicates: List[str] = []

    for index, atom in enumerate(query.relational_body):
        alias = f"t{index}"
        aliases.append((atom.relation, alias))
        for position, term in enumerate(atom.terms):
            column = f"{alias}.{_attribute_name(schema, atom.relation, position)}"
            if is_variable(term):
                if term in variable_columns:
                    predicates.append(f"{variable_columns[term]} = {column}")
                else:
                    variable_columns[term] = column
            else:
                predicates.append(f"{column} = {_literal(term.value)}")

    for atom in query.body:
        if isinstance(atom, InequalityAtom):
            predicates.append(
                f"{_term_sql(atom.left, variable_columns)} <> "
                f"{_term_sql(atom.right, variable_columns)}"
            )
        elif isinstance(atom, EqualityAtom):
            predicates.append(
                f"{_term_sql(atom.left, variable_columns)} = "
                f"{_term_sql(atom.right, variable_columns)}"
            )

    select_items = []
    for position, term in enumerate(query.head):
        select_items.append(f"{_term_sql(term, variable_columns)} AS h{position}")
    select_clause = "SELECT DISTINCT " + ", ".join(select_items) if select_items else "SELECT DISTINCT 1"
    from_clause = "FROM " + ", ".join(f"{rel} {alias}" for rel, alias in aliases)
    statement = f"{select_clause}\n{from_clause}"
    if predicates:
        statement += "\nWHERE " + "\n  AND ".join(predicates)
    return statement


def render_union_sql(
    union: UnionQuery, schema: Optional[RelationalSchema] = None
) -> str:
    """Render a union of conjunctive queries as SQL with UNION."""
    return "\nUNION\n".join(render_sql(disjunct, schema) for disjunct in union)


def _term_sql(term: Term, variable_columns: Dict[Variable, str]) -> str:
    if is_variable(term):
        if term in variable_columns:
            return variable_columns[term]
        return f"/* unbound {term} */ NULL"
    return _literal(term.value)


def _literal(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)
