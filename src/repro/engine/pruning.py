"""XML-specific optimizations of the backchase search space.

Paper section 3.2 describes three criteria that shrink the universal plan
and the set of subqueries the backchase must inspect, without losing the
optimal reformulation:

1. ``desc`` atoms that run *parallel* to a chain of ``child``/``desc`` atoms
   are removed from the universal plan (navigating a descendant edge can
   never be cheaper than the explicit chain under a reasonable cost model).
2. Child/descendant navigation steps in a subquery must be contiguous --
   no "jumping" into the middle of a document.
3. A subquery must contain a valid entry point into each document it
   navigates (a ``root`` atom, an unproduced context node, or a non-GReX
   atom such as a view).

Criteria 2-3 are enforced constructively: a directed *reachability graph*
over the atoms of the universal plan is built, and the backchase only ever
extends a candidate subquery with atoms reachable from what it already
contains, exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..logical.atoms import RelationalAtom
from ..logical.queries import ConjunctiveQuery
from ..logical.terms import Term, Variable, is_variable
from .shortcut import ClosureSpec


@dataclass(frozen=True)
class GrexAtomClassifier:
    """Classifies atoms of a universal plan with respect to GReX relations."""

    specs: Tuple[ClosureSpec, ...]

    def __init__(self, specs: Sequence[ClosureSpec]):
        object.__setattr__(self, "specs", tuple(specs))

    def _spec_relation_sets(self):
        navigation, roots, properties = set(), set(), set()
        for spec in self.specs:
            navigation.update((spec.child, spec.desc))
            roots.add(spec.root)
            properties.update((spec.tag, spec.text, spec.attr, spec.id, spec.el))
        return navigation, roots, properties

    def is_navigation(self, atom: RelationalAtom) -> bool:
        navigation, _, _ = self._spec_relation_sets()
        return atom.relation in navigation and atom.arity == 2

    def is_root(self, atom: RelationalAtom) -> bool:
        _, roots, _ = self._spec_relation_sets()
        return atom.relation in roots

    def is_property(self, atom: RelationalAtom) -> bool:
        _, _, properties = self._spec_relation_sets()
        return atom.relation in properties

    def is_grex(self, atom: RelationalAtom) -> bool:
        return self.is_navigation(atom) or self.is_root(atom) or self.is_property(atom)

    def is_descendant(self, atom: RelationalAtom) -> bool:
        return any(atom.relation == spec.desc for spec in self.specs)

    def is_child(self, atom: RelationalAtom) -> bool:
        return any(atom.relation == spec.child for spec in self.specs)


def prune_parallel_descendant_atoms(
    plan: ConjunctiveQuery, specs: Sequence[ClosureSpec]
) -> Tuple[ConjunctiveQuery, int]:
    """Criterion 1: drop ``desc`` atoms parallel to a chain of other navigation atoms.

    Reflexive ``desc`` atoms are always dropped.  A non-reflexive ``desc(x, y)``
    is dropped when ``y`` is reachable from ``x`` through the remaining
    navigation atoms (excluding the atom itself).  Equivalence to the original
    query and optimality of the best reformulation are preserved (paper
    section 3.2, criterion 1).
    """
    classifier = GrexAtomClassifier(specs)
    atoms = list(plan.relational_body)
    navigation_edges: Dict[Term, Set[Tuple[Term, RelationalAtom]]] = {}
    for atom in atoms:
        if classifier.is_navigation(atom):
            navigation_edges.setdefault(atom.terms[0], set()).add((atom.terms[1], atom))

    def reachable_without(source: Term, target: Term, excluded: RelationalAtom) -> bool:
        frontier = [source]
        seen: Set[Term] = set()
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            for successor, edge_atom in navigation_edges.get(node, ()):  # BFS/DFS
                if edge_atom is excluded and node == source:
                    # skip only the excluded atom when leaving the source;
                    # other occurrences of the same edge via child are allowed
                    continue
                if successor == target:
                    return True
                frontier.append(successor)
        return False

    removed: Set[RelationalAtom] = set()
    for atom in atoms:
        if not classifier.is_descendant(atom) or atom.arity != 2:
            continue
        source, target = atom.terms
        if source == target:
            removed.add(atom)
            continue
        if reachable_without(source, target, atom):
            removed.add(atom)
    if not removed:
        return plan, 0
    kept = [a for a in plan.body if not (isinstance(a, RelationalAtom) and a in removed)]
    return plan.with_body(kept), len(removed)


class SubqueryLegality:
    """Criteria 2-3: legal extension of candidate subqueries.

    Implements the directed reachability graph of paper section 3.2: the
    backchase starts candidate subqueries at *entry* atoms (roots of the
    graph) and only ever adds an atom whose context node is already covered
    by the candidate.  Non-GReX atoms (views, relational storage,
    specialized relations) are always entry points and cover all their
    variables.
    """

    def __init__(
        self,
        atoms: Sequence[RelationalAtom],
        specs: Sequence[ClosureSpec] = (),
        enabled: bool = True,
    ):
        self.atoms = tuple(atoms)
        self.enabled = enabled and bool(specs)
        self.classifier = GrexAtomClassifier(specs) if specs else None
        self._produced: Set[Term] = set()
        if self.classifier is not None:
            for atom in self.atoms:
                if self.classifier.is_navigation(atom):
                    self._produced.add(atom.terms[1])
                elif self.classifier.is_root(atom):
                    self._produced.add(atom.terms[0])

    # ------------------------------------------------------------------
    def is_entry(self, atom: RelationalAtom) -> bool:
        """Entry points: roots, non-GReX atoms, and unproduced context nodes."""
        if not self.enabled:
            return True
        classifier = self.classifier
        if not classifier.is_grex(atom):
            return True
        if classifier.is_root(atom):
            return True
        if classifier.is_navigation(atom):
            return atom.terms[0] not in self._produced
        # property atom: entry when its node is not produced by any navigation
        return atom.terms[0] not in self._produced

    def covered_terms(self, subset: Iterable[RelationalAtom]) -> Set[Term]:
        """Terms made available ("navigated to") by the atoms of *subset*."""
        covered: Set[Term] = set()
        classifier = self.classifier
        for atom in subset:
            if classifier is None or not classifier.is_grex(atom):
                covered.update(atom.terms)
            elif classifier.is_root(atom):
                covered.update(atom.terms)
            elif classifier.is_navigation(atom):
                covered.add(atom.terms[1])
                if self.is_entry(atom):
                    covered.add(atom.terms[0])
            else:  # property atom
                covered.update(atom.terms)
        return covered

    def can_extend(
        self, subset: Sequence[RelationalAtom], atom: RelationalAtom
    ) -> bool:
        """May *atom* be added to the candidate *subset* (criteria 2-3)?"""
        if not self.enabled:
            return True
        if self.is_entry(atom):
            return True
        covered = self.covered_terms(subset)
        classifier = self.classifier
        if classifier.is_navigation(atom):
            return atom.terms[0] in covered
        # property atoms attach to an already-covered node
        return atom.terms[0] in covered

    def is_legal(self, subset: Sequence[RelationalAtom]) -> bool:
        """Is the whole *subset* constructible by legal extensions?"""
        if not self.enabled:
            return True
        remaining = list(subset)
        current: List[RelationalAtom] = []
        progressed = True
        while remaining and progressed:
            progressed = False
            for index, atom in enumerate(remaining):
                if self.can_extend(current, atom):
                    current.append(atom)
                    remaining.pop(index)
                    progressed = True
                    break
        return not remaining
