"""Plug-in cost estimators for comparing candidate reformulations.

MARS does not commit to a particular cost model; it requires only that the
model be *monotone* -- adding atoms to a query never makes it cheaper --
because that is what makes restricting attention to minimal reformulations
safe (paper section 1) and what makes the backchase's cost-based pruning
correct (paper section 2.3).

Two estimators are provided:

* :class:`SimpleCostEstimator` -- sum of weighted relation cardinalities
  plus a per-join penalty.  Trivially monotone, very fast; used as default.
* :class:`DynamicProgrammingCostEstimator` -- follows the paper more
  closely: it costs a subquery by searching for the best join order with
  dynamic programming over connected subsets, using textbook cardinality
  estimation (cross product divided by a selectivity factor per shared
  variable).  Its estimate of the best plan is then made monotone by adding
  the scan costs of every referenced relation.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from ..logical.atoms import RelationalAtom
from ..logical.queries import ConjunctiveQuery
from ..storage.statistics import TableStatistics

DEFAULT_JOIN_SELECTIVITY = 0.1
DP_ATOM_LIMIT = 9


class CostEstimator(ABC):
    """Interface of the plug-in cost estimator (paper Figure 2)."""

    @abstractmethod
    def estimate(self, query: ConjunctiveQuery) -> float:
        """Return an abstract cost for executing *query*; lower is better."""

    def compare(self, left: ConjunctiveQuery, right: ConjunctiveQuery) -> int:
        """Three-way comparison helper; negative when *left* is cheaper."""
        left_cost, right_cost = self.estimate(left), self.estimate(right)
        if left_cost < right_cost:
            return -1
        if left_cost > right_cost:
            return 1
        return 0


class SimpleCostEstimator(CostEstimator):
    """Monotone cost: weighted scan cost per atom plus a join penalty."""

    def __init__(
        self,
        statistics: Optional[TableStatistics] = None,
        join_penalty: float = 1.0,
    ):
        self.statistics = statistics or TableStatistics()
        self.join_penalty = join_penalty

    def estimate(self, query: ConjunctiveQuery) -> float:
        atoms = query.relational_body
        if not atoms:
            return 0.0
        scan_cost = sum(self.statistics.scan_cost(atom.relation) for atom in atoms)
        join_cost = self.join_penalty * max(0, len(atoms) - 1)
        return scan_cost + join_cost


class DynamicProgrammingCostEstimator(CostEstimator):
    """Join-order-aware estimator with a dynamic-programming search.

    For up to :data:`DP_ATOM_LIMIT` atoms an exact DP over subsets finds the
    cheapest bushy join order; beyond that a greedy order is used.  The cost
    of a plan is the sum of estimated intermediate-result cardinalities (a
    common logical cost metric).  To preserve monotonicity the final figure
    adds every atom's weighted scan cost, so supersets of atoms can never be
    estimated cheaper than the original set.
    """

    def __init__(
        self,
        statistics: Optional[TableStatistics] = None,
        join_selectivity: float = DEFAULT_JOIN_SELECTIVITY,
    ):
        self.statistics = statistics or TableStatistics()
        self.join_selectivity = join_selectivity

    # -- cardinality model ------------------------------------------------
    def _atom_cardinality(self, atom: RelationalAtom) -> float:
        return max(1.0, self.statistics.cardinality(atom.relation))

    def _join_cardinality(
        self,
        left_card: float,
        right_card: float,
        shared_variables: int,
    ) -> float:
        selectivity = self.join_selectivity ** max(0, shared_variables)
        return max(1.0, left_card * right_card * selectivity)

    # -- plan search ------------------------------------------------------
    def estimate(self, query: ConjunctiveQuery) -> float:
        atoms = query.relational_body
        if not atoms:
            return 0.0
        scan_cost = sum(
            self._atom_cardinality(atom) * self.statistics.weight(atom.relation)
            for atom in atoms
        )
        if len(atoms) == 1:
            return scan_cost
        if len(atoms) <= DP_ATOM_LIMIT:
            plan_cost = self._dp_plan_cost(atoms)
        else:
            plan_cost = self._greedy_plan_cost(atoms)
        return scan_cost + plan_cost

    def _variables_of(self, atoms: Sequence[RelationalAtom]) -> FrozenSet:
        variables = set()
        for atom in atoms:
            variables.update(atom.variables())
        return frozenset(variables)

    def _dp_plan_cost(self, atoms: Sequence[RelationalAtom]) -> float:
        indexes = tuple(range(len(atoms)))
        # best[subset] = (cost, cardinality, variables)
        best: Dict[FrozenSet[int], Tuple[float, float, FrozenSet]] = {}
        for index in indexes:
            subset = frozenset((index,))
            best[subset] = (
                0.0,
                self._atom_cardinality(atoms[index]),
                self._variables_of([atoms[index]]),
            )
        for size in range(2, len(atoms) + 1):
            for combo in itertools.combinations(indexes, size):
                subset = frozenset(combo)
                best_entry = None
                for split_size in range(1, size):
                    for left_combo in itertools.combinations(combo, split_size):
                        left = frozenset(left_combo)
                        right = subset - left
                        if left not in best or right not in best:
                            continue
                        left_cost, left_card, left_vars = best[left]
                        right_cost, right_card, right_vars = best[right]
                        shared = len(left_vars & right_vars)
                        cardinality = self._join_cardinality(left_card, right_card, shared)
                        cost = left_cost + right_cost + cardinality
                        if best_entry is None or cost < best_entry[0]:
                            best_entry = (cost, cardinality, left_vars | right_vars)
                if best_entry is not None:
                    best[subset] = best_entry
        full = frozenset(indexes)
        return best[full][0] if full in best else self._greedy_plan_cost(atoms)

    def _greedy_plan_cost(self, atoms: Sequence[RelationalAtom]) -> float:
        remaining = list(range(len(atoms)))
        # Start from the smallest relation.
        remaining.sort(key=lambda i: self._atom_cardinality(atoms[i]))
        first = remaining.pop(0)
        cardinality = self._atom_cardinality(atoms[first])
        variables = set(atoms[first].variables())
        total = 0.0
        while remaining:
            best_index = None
            best_value = None
            for position, index in enumerate(remaining):
                shared = len(variables & set(atoms[index].variables()))
                value = self._join_cardinality(
                    cardinality, self._atom_cardinality(atoms[index]), shared
                )
                if best_value is None or value < best_value:
                    best_value = value
                    best_index = position
            index = remaining.pop(best_index)
            cardinality = best_value
            total += best_value
            variables.update(atoms[index].variables())
        return total


def best_of(
    estimator: CostEstimator, queries: Sequence[ConjunctiveQuery]
) -> Tuple[Optional[ConjunctiveQuery], float]:
    """Return the cheapest query of *queries* and its cost (inf when empty)."""
    best_query = None
    best_cost = math.inf
    for query in queries:
        cost = estimator.estimate(query)
        if cost < best_cost:
            best_cost = cost
            best_query = query
    return best_query, best_cost
