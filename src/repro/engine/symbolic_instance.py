"""Symbolic database instances built from query bodies.

The key observation behind the new C&B implementation (paper section 3.1,
following Popa's thesis) is that chasing a query ``Q`` with a constraint
``c`` can be viewed as *evaluating a relational query obtained from c over a
small database obtained from Q*.  The "small database" is the symbolic
instance ``Inst(Q)``: its constants are the terms of ``Q`` and its tuples
are the relational atoms of ``Q``'s body.

:class:`SymbolicInstance` stores those tuples indexed by relation name and
maintains hash indexes on demand, so that the join-tree evaluator can probe
them like a hash join would.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..logical.atoms import Atom, RelationalAtom
from ..logical.queries import ConjunctiveQuery
from ..logical.terms import Term

SymbolicRow = Tuple[Term, ...]


class SymbolicInstance:
    """The canonical database ``Inst(Q)`` of a conjunctive query body."""

    def __init__(self, atoms: Iterable[RelationalAtom] = ()):
        self._relations: Dict[str, List[SymbolicRow]] = {}
        self._row_sets: Dict[str, set] = {}
        self._indexes: Dict[Tuple[str, Tuple[int, ...]], Dict[Tuple[Term, ...], List[SymbolicRow]]] = {}
        for atom in atoms:
            self.add_atom(atom)

    @classmethod
    def from_query(cls, query: ConjunctiveQuery) -> "SymbolicInstance":
        return cls(query.relational_body)

    @classmethod
    def from_atoms(cls, atoms: Sequence[Atom]) -> "SymbolicInstance":
        return cls(a for a in atoms if isinstance(a, RelationalAtom))

    # ------------------------------------------------------------------
    def add_atom(self, atom: RelationalAtom) -> bool:
        """Insert the tuple for *atom*; return False when it was already present."""
        rows = self._relations.setdefault(atom.relation, [])
        row_set = self._row_sets.setdefault(atom.relation, set())
        if atom.terms in row_set:
            return False
        rows.append(atom.terms)
        row_set.add(atom.terms)
        # Keep existing indexes for this relation in sync.
        for (relation, positions), index in self._indexes.items():
            if relation == atom.relation:
                key = tuple(atom.terms[p] for p in positions)
                index.setdefault(key, []).append(atom.terms)
        return True

    def contains_atom(self, atom: RelationalAtom) -> bool:
        return atom.terms in self._row_sets.get(atom.relation, set())

    def rows(self, relation: str) -> List[SymbolicRow]:
        return self._relations.get(relation, [])

    def cardinality(self, relation: str) -> int:
        return len(self._relations.get(relation, ()))

    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    # ------------------------------------------------------------------
    def index(
        self, relation: str, positions: Tuple[int, ...]
    ) -> Dict[Tuple[Term, ...], List[SymbolicRow]]:
        """A hash index of *relation* on *positions*, built lazily and maintained."""
        key = (relation, positions)
        cached = self._indexes.get(key)
        if cached is not None:
            return cached
        index: Dict[Tuple[Term, ...], List[SymbolicRow]] = {}
        for row in self._relations.get(relation, ()):  # build once
            index.setdefault(tuple(row[p] for p in positions), []).append(row)
        self._indexes[key] = index
        return index

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._relations.values())

    def __str__(self) -> str:
        parts = ", ".join(f"{name}:{len(rows)}" for name, rows in self._relations.items())
        return f"SymbolicInstance[{parts}]"
