"""Homomorphism search between conjunctions of atoms.

Finding a homomorphism from the premise of a dependency into the body of a
query is the elementary operation of the chase (paper section 3.1).  Two
strategies are provided:

* :class:`NaiveHomomorphismFinder` -- tuple-at-a-time backtracking search,
  faithful to the original C&B prototype of Popa et al. [26].  It is kept as
  the baseline for the "new vs. original implementation" experiments.
* :class:`JoinTreeHomomorphismFinder` (in :mod:`repro.engine.join_tree`) --
  the paper's new set-oriented implementation, which evaluates the premise
  as a relational query over a symbolic instance using hash joins.

Both implementations share the same interface: given pattern atoms and a
target set of atoms, enumerate the mappings from pattern variables to target
terms under which every pattern atom lands inside the target.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..logical.atoms import (
    Atom,
    EqualityAtom,
    InequalityAtom,
    RelationalAtom,
)
from ..logical.terms import Constant, Term, Variable, is_variable

Homomorphism = Dict[Variable, Term]


def _unify_atom(
    pattern: RelationalAtom, target: RelationalAtom, mapping: Homomorphism
) -> Optional[Homomorphism]:
    """Extend *mapping* so *pattern* maps onto *target*; return None on clash."""
    if pattern.relation != target.relation or pattern.arity != target.arity:
        return None
    extended = dict(mapping)
    for pattern_term, target_term in zip(pattern.terms, target.terms):
        if is_variable(pattern_term):
            bound = extended.get(pattern_term)
            if bound is None:
                extended[pattern_term] = target_term
            elif bound != target_term:
                return None
        else:
            if pattern_term != target_term:
                return None
    return extended


def _filters_hold(
    pattern_atoms: Sequence[Atom],
    target_atoms: Sequence[Atom],
    mapping: Homomorphism,
) -> bool:
    """Check equality/inequality atoms of the pattern under *mapping*.

    An equality holds when both sides map to the same term.  An inequality
    holds when the sides map to distinct constants, to syntactically distinct
    terms that the target explicitly declares unequal, or (conservatively)
    to distinct terms -- the chase treats the canonical instance as having
    distinct labelled nulls, which matches the standard chase semantics.
    """
    target_inequalities = {
        frozenset((a.left, a.right))
        for a in target_atoms
        if isinstance(a, InequalityAtom)
    }
    for atom in pattern_atoms:
        if isinstance(atom, EqualityAtom):
            left = mapping.get(atom.left, atom.left)
            right = mapping.get(atom.right, atom.right)
            if left != right:
                return False
        elif isinstance(atom, InequalityAtom):
            left = mapping.get(atom.left, atom.left)
            right = mapping.get(atom.right, atom.right)
            if left == right:
                return False
            both_constants = isinstance(left, Constant) and isinstance(right, Constant)
            if both_constants:
                continue
            if frozenset((left, right)) in target_inequalities:
                continue
            # Distinct terms of the canonical instance are treated as unequal.
    return True


class NaiveHomomorphismFinder:
    """Backtracking, tuple-at-a-time homomorphism search (the [26] baseline)."""

    def find_all(
        self,
        pattern: Sequence[Atom],
        target: Sequence[Atom],
        seed: Optional[Mapping[Variable, Term]] = None,
    ) -> List[Homomorphism]:
        """Return every homomorphism from *pattern* into *target* extending *seed*."""
        return list(self.iterate(pattern, target, seed))

    def find_one(
        self,
        pattern: Sequence[Atom],
        target: Sequence[Atom],
        seed: Optional[Mapping[Variable, Term]] = None,
    ) -> Optional[Homomorphism]:
        """Return some homomorphism from *pattern* into *target*, or ``None``."""
        for mapping in self.iterate(pattern, target, seed):
            return mapping
        return None

    def iterate(
        self,
        pattern: Sequence[Atom],
        target: Sequence[Atom],
        seed: Optional[Mapping[Variable, Term]] = None,
    ) -> Iterator[Homomorphism]:
        relational_pattern = [a for a in pattern if isinstance(a, RelationalAtom)]
        target_relational = [a for a in target if isinstance(a, RelationalAtom)]
        by_relation: Dict[str, List[RelationalAtom]] = {}
        for atom in target_relational:
            by_relation.setdefault(atom.relation, []).append(atom)
        initial: Homomorphism = dict(seed) if seed else {}

        def backtrack(index: int, mapping: Homomorphism) -> Iterator[Homomorphism]:
            if index == len(relational_pattern):
                if _filters_hold(pattern, target, mapping):
                    yield dict(mapping)
                return
            atom = relational_pattern[index]
            for candidate in by_relation.get(atom.relation, ()):  # all same-name atoms
                extended = _unify_atom(atom, candidate, mapping)
                if extended is not None:
                    yield from backtrack(index + 1, extended)

        yield from backtrack(0, initial)

    def exists(
        self,
        pattern: Sequence[Atom],
        target: Sequence[Atom],
        seed: Optional[Mapping[Variable, Term]] = None,
    ) -> bool:
        return self.find_one(pattern, target, seed) is not None


def query_homomorphism(
    source_head: Sequence[Term],
    source_body: Sequence[Atom],
    target_head: Sequence[Term],
    target_body: Sequence[Atom],
    finder: Optional[NaiveHomomorphismFinder] = None,
) -> Optional[Homomorphism]:
    """Find a containment mapping between two queries with compatible heads.

    The mapping must send the i-th head term of the source to the i-th head
    term of the target; this is the classical containment-mapping condition.
    """
    if len(source_head) != len(target_head):
        return None
    seed: Homomorphism = {}
    for source_term, target_term in zip(source_head, target_head):
        if is_variable(source_term):
            bound = seed.get(source_term)
            if bound is not None and bound != target_term:
                return None
            seed[source_term] = target_term
        else:
            if source_term != target_term:
                return None
    finder = finder or NaiveHomomorphismFinder()
    return finder.find_one(source_body, target_body, seed)
