"""Chase & Backchase engine: the C&B algorithm and its optimizations."""

from .backchase import BackchaseConfig, BackchaseEngine, BackchaseResult
from .cb import CBConfig, CBEngine, CBResult
from .chase import ChaseConfig, ChaseEngine, ChaseResult, ChaseStatistics, chase_query
from .containment import ContainmentChecker
from .cost import (
    CostEstimator,
    DynamicProgrammingCostEstimator,
    SimpleCostEstimator,
    best_of,
)
from .homomorphism import NaiveHomomorphismFinder, query_homomorphism
from .join_tree import CompiledConjunction, JoinTreeHomomorphismFinder
from .pruning import (
    GrexAtomClassifier,
    SubqueryLegality,
    prune_parallel_descendant_atoms,
)
from .shortcut import ClosureSpec, ShortcutChaseEngine, descendant_closure
from .symbolic_instance import SymbolicInstance

__all__ = [
    "BackchaseConfig",
    "BackchaseEngine",
    "BackchaseResult",
    "CBConfig",
    "CBEngine",
    "CBResult",
    "ChaseConfig",
    "ChaseEngine",
    "ChaseResult",
    "ChaseStatistics",
    "ClosureSpec",
    "CompiledConjunction",
    "ContainmentChecker",
    "CostEstimator",
    "DynamicProgrammingCostEstimator",
    "GrexAtomClassifier",
    "JoinTreeHomomorphismFinder",
    "NaiveHomomorphismFinder",
    "ShortcutChaseEngine",
    "SimpleCostEstimator",
    "SubqueryLegality",
    "SymbolicInstance",
    "best_of",
    "chase_query",
    "descendant_closure",
    "prune_parallel_descendant_atoms",
    "query_homomorphism",
]
