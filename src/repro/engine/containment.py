"""Containment and equivalence of conjunctive queries under dependencies.

The classical chase-based test: ``Q1`` is contained in ``Q2`` under a set of
dependencies ``Sigma`` iff there is a containment mapping from ``Q2`` into
(every branch of) ``chase_Sigma(Q1)`` that maps ``Q2``'s head onto ``Q1``'s
head.  The backchase uses the specialised form of this test: a subquery
``S`` of the universal plan is equivalent to the original query ``Q`` iff
``S`` is contained in ``Q`` (the other direction is automatic because ``S``'s
body is a subset of the chase of ``Q``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..logical.dependencies import DED
from ..logical.queries import ConjunctiveQuery
from .chase import ChaseConfig, ChaseEngine, ChaseResult
from .homomorphism import NaiveHomomorphismFinder, query_homomorphism
from .join_tree import JoinTreeHomomorphismFinder
from .shortcut import ClosureSpec, ShortcutChaseEngine


class ContainmentChecker:
    """Chase-based containment and equivalence tests.

    When closure specs are supplied, the chases performed by the checker use
    the :class:`ShortcutChaseEngine`, so that the reflexive-transitive
    closure axioms of TIX never have to be chased step by step (this matters
    a lot: the backchase performs one chase per candidate subquery).
    """

    def __init__(
        self,
        config: Optional[ChaseConfig] = None,
        specs: Sequence[ClosureSpec] = (),
    ):
        self.config = config or ChaseConfig()
        self.specs = tuple(specs)
        if self.specs:
            self._engine = ShortcutChaseEngine(self.specs, self.config)
        else:
            self._engine = ChaseEngine(self.config)
        self._naive_finder = NaiveHomomorphismFinder()
        self._join_finder = JoinTreeHomomorphismFinder()

    # ------------------------------------------------------------------
    def _finder(self):
        if self.config.strategy == "naive":
            return self._naive_finder
        return self._join_finder

    @staticmethod
    def relevant_dependencies(
        query: ConjunctiveQuery, dependencies: Sequence[DED]
    ) -> Sequence[DED]:
        """Dependencies that can possibly fire when chasing *query*.

        A dependency can only fire once every relation of its premise is
        derivable; derivability is computed as a fixpoint starting from the
        relations of the query.  Filtering by relevance does not change the
        chase result but avoids repeatedly scanning constraints about
        documents and views the candidate never touches -- important because
        the backchase performs one chase per candidate subquery.
        """
        reachable = set(query.relation_names())
        remaining = list(dependencies)
        selected = []
        progressed = True
        while progressed:
            progressed = False
            still_remaining = []
            for dependency in remaining:
                premise_relations = {
                    a.relation for a in dependency.premise_relational_atoms()
                }
                if premise_relations <= reachable:
                    selected.append(dependency)
                    for disjunct in dependency.disjuncts:
                        for atom in disjunct.relational_atoms():
                            if atom.relation not in reachable:
                                reachable.add(atom.relation)
                                progressed = True
                    progressed = progressed or True
                else:
                    still_remaining.append(dependency)
            remaining = still_remaining
        return selected

    def _has_containment_mapping(
        self, outer: ConjunctiveQuery, chased_inner: ConjunctiveQuery
    ) -> bool:
        """Is there a homomorphism from *outer* into *chased_inner* fixing the head?"""
        mapping = query_homomorphism(
            outer.head,
            outer.body,
            chased_inner.head,
            chased_inner.body,
            finder=self._finder(),
        )
        return mapping is not None

    # ------------------------------------------------------------------
    def is_contained_in(
        self,
        inner: ConjunctiveQuery,
        outer: ConjunctiveQuery,
        dependencies: Sequence[DED] = (),
    ) -> bool:
        """Check ``inner ⊑ outer`` under *dependencies*.

        With a disjunctive chase, the containment mapping must exist into
        every leaf of the chase of *inner*.
        """
        if len(inner.head) != len(outer.head):
            return False
        chased = self._engine.chase(
            inner, self.relevant_dependencies(inner, dependencies)
        )
        if not chased.branches:
            # The chase failed on every branch: inner is unsatisfiable, hence
            # contained in anything of matching arity.
            return True
        return all(
            self._has_containment_mapping(outer, branch) for branch in chased.branches
        )

    def is_equivalent(
        self,
        left: ConjunctiveQuery,
        right: ConjunctiveQuery,
        dependencies: Sequence[DED] = (),
    ) -> bool:
        """Check ``left ≡ right`` under *dependencies* (both containments)."""
        return self.is_contained_in(left, right, dependencies) and self.is_contained_in(
            right, left, dependencies
        )

    def is_equivalent_subquery(
        self,
        subquery: ConjunctiveQuery,
        original: ConjunctiveQuery,
        dependencies: Sequence[DED] = (),
        precomputed_chase: Optional[ChaseResult] = None,
    ) -> bool:
        """Backchase equivalence test for a subquery of the universal plan.

        Because *subquery*'s body is a subset of the chase of *original*
        (with the same head), ``original ⊑ subquery`` always holds; only
        ``subquery ⊑ original`` needs the chase-based check.  A precomputed
        chase of the subquery can be supplied to avoid repeating work.
        """
        if not subquery.is_safe():
            return False
        chased = precomputed_chase or self._engine.chase(
            subquery, self.relevant_dependencies(subquery, dependencies)
        )
        if not chased.branches:
            return True
        return all(
            self._has_containment_mapping(original, branch) for branch in chased.branches
        )

    def is_minimal(
        self,
        query: ConjunctiveQuery,
        dependencies: Sequence[DED] = (),
    ) -> bool:
        """Is *query* minimal, i.e. does dropping any body atom break equivalence?"""
        atoms = query.relational_body
        for index in range(len(atoms)):
            reduced_atoms = atoms[:index] + atoms[index + 1 :]
            candidate = query.subquery(reduced_atoms)
            if not candidate.is_safe():
                continue
            if self.is_equivalent(candidate, query, dependencies):
                return False
        return True
