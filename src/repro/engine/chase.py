"""The chase: rewriting a query with embedded dependencies until fixpoint.

The chase is the main operation of the C&B algorithm (paper sections 2.3 and
3.1).  A chase *step* of a query ``Q`` with a dependency ``c`` applies when

(i)  there is a homomorphism ``h`` from the premise of ``c`` into the body
     of ``Q``, and
(ii) ``h`` cannot be extended to a homomorphism of any disjunct of ``c``'s
     conclusion into the body of ``Q``.

Its effect is to add the image of a conclusion disjunct under ``h`` to the
body (with fresh variables for existentials) or, for equality-generating
conclusions, to merge two terms of ``Q``.  Disjunctive dependencies branch
the chase into one copy per disjunct; the result of the chase is therefore a
set of leaf queries.

Two homomorphism-search strategies are available, mirroring the paper:

* ``"naive"``   -- backtracking search, one candidate tuple at a time
  (the original C&B prototype's strategy, kept as the experimental baseline);
* ``"joinTree"`` -- the new set-oriented implementation: premises compiled
  to hash-join plans evaluated over the symbolic instance ``Inst(Q)``, with
  the extension check done as a bulk semijoin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ChaseError
from ..obs.timer import timer
from ..logical.atoms import Atom, EqualityAtom, RelationalAtom
from ..logical.dependencies import DED, Disjunct
from ..logical.queries import ConjunctiveQuery
from ..logical.terms import Constant, Term, Variable, VariableFactory, is_variable
from .homomorphism import Homomorphism, NaiveHomomorphismFinder
from .join_tree import CompiledConjunction, JoinTreeHomomorphismFinder
from .symbolic_instance import SymbolicInstance

DEFAULT_MAX_STEPS = 100_000
DEFAULT_MAX_BRANCHES = 64


@dataclass
class ChaseConfig:
    """Tuning knobs for the chase engine."""

    strategy: str = "joinTree"  # "joinTree" (new implementation) or "naive"
    max_steps: int = DEFAULT_MAX_STEPS
    max_branches: int = DEFAULT_MAX_BRANCHES
    raise_on_budget: bool = True


@dataclass
class ChaseStatistics:
    """Counters reported by a chase run (used by the experiments)."""

    steps_applied: int = 0
    homomorphisms_found: int = 0
    dependencies_fired: Dict[str, int] = field(default_factory=dict)
    branches: int = 1
    elapsed_seconds: float = 0.0

    def record(self, dependency: DED) -> None:
        self.steps_applied += 1
        self.dependencies_fired[dependency.name] = (
            self.dependencies_fired.get(dependency.name, 0) + 1
        )


@dataclass
class ChaseResult:
    """The outcome of chasing a query: one or more leaf queries plus counters."""

    original: ConjunctiveQuery
    branches: List[ConjunctiveQuery]
    statistics: ChaseStatistics

    @property
    def universal_plan(self) -> ConjunctiveQuery:
        """The single chase result; raises when the chase branched."""
        if len(self.branches) != 1:
            raise ChaseError(
                f"chase produced {len(self.branches)} branches; "
                "use .branches for disjunctive results"
            )
        return self.branches[0]


class _CompiledDependency:
    """A dependency with premise and conclusions compiled for fast evaluation."""

    def __init__(self, dependency: DED):
        self.dependency = dependency
        self.premise_plan = CompiledConjunction(dependency.premise)
        universal = set(dependency.universal_variables())
        self.disjunct_plans: List[CompiledConjunction] = []
        self.disjunct_shared: List[Tuple[Variable, ...]] = []
        for disjunct in dependency.disjuncts:
            shared = tuple(v for v in disjunct.variables() if v in universal)
            self.disjunct_plans.append(
                CompiledConjunction(disjunct.relational_atoms(), seed_variables=shared)
            )
            self.disjunct_shared.append(shared)


class ChaseEngine:
    """Chases conjunctive queries with DEDs using a configurable strategy."""

    def __init__(self, config: Optional[ChaseConfig] = None):
        self.config = config or ChaseConfig()
        if self.config.strategy not in ("naive", "joinTree"):
            raise ChaseError(f"unknown chase strategy {self.config.strategy!r}")
        self._naive = NaiveHomomorphismFinder()
        self._compiled_cache: Dict[int, _CompiledDependency] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def chase(
        self,
        query: ConjunctiveQuery,
        dependencies: Sequence[DED],
    ) -> ChaseResult:
        """Chase *query* with *dependencies* until no step applies."""
        clock = timer()
        statistics = ChaseStatistics()
        factory = VariableFactory(prefix="_x", used=[v.name for v in query.variables()])
        frontier: List[ConjunctiveQuery] = [query.dedupe()]
        finished: List[ConjunctiveQuery] = []
        compiled = [self._compile(dependency) for dependency in dependencies]

        while frontier:
            current = frontier.pop()
            outcome = self._chase_branch(current, compiled, factory, statistics)
            if outcome is None:
                # inconsistent branch (chase failure): drop it
                continue
            branch_results, saturated = outcome
            if saturated:
                finished.extend(branch_results)
            else:
                frontier.extend(branch_results)
            if len(frontier) + len(finished) > self.config.max_branches:
                if self.config.raise_on_budget:
                    raise ChaseError(
                        f"chase exceeded branch budget ({self.config.max_branches})"
                    )
                finished.extend(frontier)
                frontier = []
        statistics.branches = max(1, len(finished))
        statistics.elapsed_seconds = clock.elapsed
        if not finished:
            finished = []
        return ChaseResult(original=query, branches=finished, statistics=statistics)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _compile(self, dependency: DED) -> _CompiledDependency:
        key = id(dependency)
        plan = self._compiled_cache.get(key)
        if plan is None:
            plan = _CompiledDependency(dependency)
            self._compiled_cache[key] = plan
        return plan

    def _chase_branch(
        self,
        query: ConjunctiveQuery,
        compiled: Sequence[_CompiledDependency],
        factory: VariableFactory,
        statistics: ChaseStatistics,
    ) -> Optional[Tuple[List[ConjunctiveQuery], bool]]:
        """Chase one branch until saturation or until it forks.

        Dependencies are processed in rounds.  For a tuple-generating
        dependency all applicable homomorphisms found in a round are applied
        in bulk (set-oriented processing); equality-generating and
        disjunctive dependencies are applied one step at a time because their
        application changes the terms the remaining homomorphisms refer to.

        Returns ``(queries, saturated)`` where *saturated* says whether the
        returned queries are chase leaves, or ``None`` when the branch is
        inconsistent and must be discarded.
        """
        current = query
        changed = True
        cached_instance: Optional[SymbolicInstance] = None
        cached_for: Optional[ConjunctiveQuery] = None
        while changed:
            changed = False
            for plan in compiled:
                dependency = plan.dependency
                while True:
                    if statistics.steps_applied > self.config.max_steps:
                        if self.config.raise_on_budget:
                            raise ChaseError(
                                f"chase exceeded step budget ({self.config.max_steps})"
                            )
                        return [current], True
                    if cached_for is not current:
                        cached_instance = SymbolicInstance.from_query(current)
                        cached_for = current
                    instance = cached_instance
                    homomorphisms = self._premise_homomorphisms(plan, current, instance)
                    statistics.homomorphisms_found += len(homomorphisms)
                    applicable = [
                        h
                        for h in homomorphisms
                        if not self._extends_to_some_disjunct(plan, h, current, instance)
                    ]
                    if not applicable:
                        break
                    if dependency.is_disjunctive:
                        statistics.record(dependency)
                        branches = []
                        for disjunct in dependency.disjuncts:
                            branch = self._apply_disjunct(
                                current, disjunct, applicable[0], factory
                            )
                            if branch is not None:
                                branches.append(branch)
                        if not branches:
                            return None
                        if len(branches) == 1:
                            current = branches[0]
                            changed = True
                            continue
                        return branches, False
                    conclusion = dependency.disjuncts[0]
                    has_equalities = bool(conclusion.equalities())
                    if has_equalities:
                        if not conclusion.relational_atoms():
                            # Pure equality-generating conclusion: apply every
                            # merge found in this round at once via union-find
                            # (set-oriented processing of EGDs).
                            applied = self._apply_egd_bulk(
                                current, conclusion, applicable, statistics, dependency
                            )
                            if applied is None:
                                return None
                            current = applied
                            changed = True
                            continue
                        statistics.record(dependency)
                        applied = self._apply_disjunct(
                            current, conclusion, applicable[0], factory
                        )
                        if applied is None:
                            return None
                        current = applied
                        changed = True
                        continue
                    # Pure TGD: apply every homomorphism found in this round.
                    before = len(current.body)
                    for homomorphism in applicable:
                        statistics.record(dependency)
                        applied = self._apply_disjunct(
                            current, conclusion, homomorphism, factory
                        )
                        if applied is None:
                            return None
                        current = applied
                    if len(current.body) != before:
                        changed = True
                    break
        return [current], True

    def _premise_homomorphisms(
        self,
        plan: _CompiledDependency,
        query: ConjunctiveQuery,
        instance: SymbolicInstance,
    ) -> List[Homomorphism]:
        if self.config.strategy == "naive":
            return self._naive.find_all(plan.dependency.premise, query.body)
        return plan.premise_plan.evaluate(instance, target_atoms=query.body)

    def _extends_to_some_disjunct(
        self,
        plan: _CompiledDependency,
        homomorphism: Homomorphism,
        query: ConjunctiveQuery,
        instance: SymbolicInstance,
    ) -> bool:
        for index, disjunct in enumerate(plan.dependency.disjuncts):
            if self._disjunct_satisfied(plan, index, disjunct, homomorphism, query, instance):
                return True
        return False

    def _disjunct_satisfied(
        self,
        plan: _CompiledDependency,
        index: int,
        disjunct: Disjunct,
        homomorphism: Homomorphism,
        query: ConjunctiveQuery,
        instance: SymbolicInstance,
    ) -> bool:
        seed = {
            variable: homomorphism[variable]
            for variable in plan.disjunct_shared[index]
            if variable in homomorphism
        }
        relational = disjunct.relational_atoms()
        if relational:
            if self.config.strategy == "naive":
                extensions = self._naive.find_all(relational, query.body, seed)
            else:
                extensions = plan.disjunct_plans[index].evaluate(
                    instance, seeds=[seed], target_atoms=query.body
                )
            if not extensions:
                return False
            candidates = extensions
        else:
            candidates = [dict(seed)]
        equalities = disjunct.equalities()
        if not equalities:
            return True
        for candidate in candidates:
            full = dict(homomorphism)
            full.update(candidate)
            if all(
                full.get(e.left, e.left) == full.get(e.right, e.right)
                for e in equalities
            ):
                return True
        return False

    def _apply_egd_bulk(
        self,
        query: ConjunctiveQuery,
        conclusion: Disjunct,
        homomorphisms: Sequence[Homomorphism],
        statistics: ChaseStatistics,
        dependency: DED,
    ) -> Optional[ConjunctiveQuery]:
        """Apply every merge demanded by an equality-generating conclusion at once.

        The merges form equivalence classes computed with union-find; a class
        containing two distinct constants means chase failure (``None``).
        Constants, then head variables, are preferred as representatives.
        """
        parent: Dict[Term, Term] = {}

        def find(term: Term) -> Term:
            root = term
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(term, term) != term:
                parent[term], term = root, parent[term]
            return root

        head_vars = set(query.head_variables())

        def union(left: Term, right: Term) -> bool:
            root_left, root_right = find(left), find(right)
            if root_left == root_right:
                return True
            left_const = isinstance(root_left, Constant)
            right_const = isinstance(root_right, Constant)
            if left_const and right_const:
                return False
            if right_const or (root_right in head_vars and not left_const):
                root_left, root_right = root_right, root_left
            parent[root_right] = root_left
            return True

        merged_any = False
        for homomorphism in homomorphisms:
            statistics.record(dependency)
            for equality in conclusion.equalities():
                left = homomorphism.get(equality.left, equality.left)
                right = homomorphism.get(equality.right, equality.right)
                if left != right:
                    merged_any = True
                if not union(left, right):
                    return None
        if not merged_any:
            return query
        substitution = {
            term: find(term) for term in parent if find(term) != term
        }
        return query.substitute(substitution).dedupe()

    def _apply_disjunct(
        self,
        query: ConjunctiveQuery,
        disjunct: Disjunct,
        homomorphism: Homomorphism,
        factory: VariableFactory,
    ) -> Optional[ConjunctiveQuery]:
        """Add the image of *disjunct* under *homomorphism* to the query body.

        Returns ``None`` when an equality forces two distinct constants to be
        merged (chase failure / inconsistent branch).
        """
        mapping: Dict[Term, Term] = dict(homomorphism)
        universal_image = set(homomorphism)
        for variable in disjunct.variables():
            if variable not in universal_image and variable not in mapping:
                mapping[variable] = factory.fresh()
        new_atoms: List[Atom] = []
        merges: List[Tuple[Term, Term]] = []
        for atom in disjunct.atoms:
            replaced = atom.substitute(mapping)
            if isinstance(replaced, EqualityAtom):
                if replaced.left != replaced.right:
                    merges.append((replaced.left, replaced.right))
            else:
                new_atoms.append(replaced)
        result = query.add_atoms(new_atoms) if new_atoms else query
        for left, right in merges:
            substitution = _merge_terms(result, left, right)
            if substitution is None:
                return None
            if substitution:
                result = result.substitute(substitution).dedupe()
        return result


def _merge_terms(
    query: ConjunctiveQuery, left: Term, right: Term
) -> Optional[Dict[Term, Term]]:
    """Substitution implementing the EGD merge of *left* and *right*.

    Prefers constants over variables and head variables over existential
    ones; returns ``None`` when both terms are distinct constants (chase
    failure) and an empty dict when the terms are already equal.
    """
    if left == right:
        return {}
    left_is_const = isinstance(left, Constant)
    right_is_const = isinstance(right, Constant)
    if left_is_const and right_is_const:
        return None
    if left_is_const:
        return {right: left}
    if right_is_const:
        return {left: right}
    head_vars = set(query.head_variables())
    if left in head_vars and right not in head_vars:
        return {right: left}
    return {left: right}


def chase_query(
    query: ConjunctiveQuery,
    dependencies: Sequence[DED],
    config: Optional[ChaseConfig] = None,
) -> ChaseResult:
    """Convenience wrapper: chase *query* with *dependencies*."""
    return ChaseEngine(config).chase(query, dependencies)
