"""The Chase & Backchase (C&B) engine: the complete reformulation pipeline.

This module glues together the pieces of :mod:`repro.engine` into the
algorithm of paper Figure 2: chase the (compiled) client query with all
dependencies to the universal plan, apply the XML-specific plan pruning,
then backchase to obtain the minimal reformulations and pick the cheapest
one with the plug-in cost estimator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..errors import ReformulationError
from ..logical.dependencies import DED
from ..logical.queries import ConjunctiveQuery
from ..obs.timer import timer
from .backchase import BackchaseConfig, BackchaseEngine, BackchaseResult
from .chase import ChaseConfig, ChaseEngine, ChaseResult
from .containment import ContainmentChecker
from .cost import CostEstimator, SimpleCostEstimator
from .pruning import SubqueryLegality, prune_parallel_descendant_atoms
from .shortcut import ClosureSpec, ShortcutChaseEngine


@dataclass
class CBConfig:
    """Configuration of the full C&B pipeline."""

    chase: ChaseConfig = field(default_factory=ChaseConfig)
    backchase: BackchaseConfig = field(default_factory=BackchaseConfig)
    use_shortcut: bool = True
    use_plan_pruning: bool = True
    use_legality_pruning: bool = True
    minimize: bool = True


@dataclass
class CBResult:
    """Everything the C&B pipeline produced for one query."""

    original: ConjunctiveQuery
    universal_plan: ConjunctiveQuery
    initial_reformulation: Optional[ConjunctiveQuery]
    minimal_reformulations: List[ConjunctiveQuery]
    best: Optional[ConjunctiveQuery]
    best_cost: float
    chase_statistics: object
    subqueries_inspected: int
    time_to_universal_plan: float
    time_to_initial: float
    time_to_best: float
    pruned_descendant_atoms: int = 0

    @property
    def total_time(self) -> float:
        return self.time_to_best

    @property
    def minimization_time(self) -> float:
        """Extra time spent past the initial reformulation ("delta" in Figure 5)."""
        return max(0.0, self.time_to_best - self.time_to_initial)


class CBEngine:
    """Chase & Backchase with the XML-specific optimizations of section 3.2."""

    def __init__(
        self,
        config: Optional[CBConfig] = None,
        estimator: Optional[CostEstimator] = None,
        specs: Sequence[ClosureSpec] = (),
    ):
        self.config = config or CBConfig()
        self.estimator = estimator or SimpleCostEstimator()
        self.specs = tuple(specs)
        checker_specs = self.specs if self.config.use_shortcut else ()
        self.checker = ContainmentChecker(self.config.chase, specs=checker_specs)
        self.backchase_engine = BackchaseEngine(
            checker=self.checker,
            estimator=self.estimator,
            config=self.config.backchase,
        )

    # ------------------------------------------------------------------
    def chase_to_universal_plan(
        self, query: ConjunctiveQuery, dependencies: Sequence[DED]
    ) -> ChaseResult:
        """Phase 1: the chase (optionally short-cutting the closure axioms)."""
        if self.config.use_shortcut and self.specs:
            engine = ShortcutChaseEngine(self.specs, self.config.chase)
            return engine.chase(query, dependencies)
        return ChaseEngine(self.config.chase).chase(query, dependencies)

    def reformulate(
        self,
        query: ConjunctiveQuery,
        dependencies: Sequence[DED],
        target_relations: Optional[Set[str]] = None,
    ) -> CBResult:
        """Run the full pipeline and return every (minimal) reformulation found.

        *target_relations* restricts reformulations to the proprietary
        schema; when ``None`` every relation may be used.
        """
        clock = timer()
        chase_result = self.chase_to_universal_plan(query, dependencies)
        if not chase_result.branches:
            raise ReformulationError(
                f"the chase found query {query.name} unsatisfiable under the constraints"
            )
        universal_plan = chase_result.branches[0]
        pruned_count = 0
        if self.config.use_plan_pruning and self.specs:
            universal_plan, pruned_count = prune_parallel_descendant_atoms(
                universal_plan, self.specs
            )
        time_universal = clock.elapsed

        candidates = self.backchase_engine.target_atoms(universal_plan, target_relations)
        legality = SubqueryLegality(
            candidates,
            specs=self.specs,
            enabled=self.config.use_legality_pruning and bool(self.specs),
        )

        initial = self.backchase_engine.initial_reformulation(
            query, universal_plan, dependencies, target_relations
        )
        time_initial = clock.elapsed

        if not self.config.minimize:
            best_cost = self.estimator.estimate(initial) if initial else math.inf
            return CBResult(
                original=query,
                universal_plan=universal_plan,
                initial_reformulation=initial,
                minimal_reformulations=[initial] if initial else [],
                best=initial,
                best_cost=best_cost,
                chase_statistics=chase_result.statistics,
                subqueries_inspected=0,
                time_to_universal_plan=time_universal,
                time_to_initial=time_initial,
                time_to_best=time_initial,
                pruned_descendant_atoms=pruned_count,
            )

        backchase_result = self.backchase_engine.backchase(
            query,
            universal_plan,
            dependencies,
            target_relations=target_relations,
            legality=legality,
        )
        time_best = clock.elapsed
        best = backchase_result.best
        best_cost = backchase_result.best_cost
        if best is None and initial is not None:
            best = initial
            best_cost = self.estimator.estimate(initial)
        return CBResult(
            original=query,
            universal_plan=universal_plan,
            initial_reformulation=initial,
            minimal_reformulations=backchase_result.minimal_reformulations,
            best=best,
            best_cost=best_cost,
            chase_statistics=chase_result.statistics,
            subqueries_inspected=backchase_result.subqueries_inspected,
            time_to_universal_plan=time_universal,
            time_to_initial=time_initial,
            time_to_best=time_best,
            pruned_descendant_atoms=pruned_count,
        )
