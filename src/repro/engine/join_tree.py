"""Set-oriented homomorphism search via compiled join trees.

This is the heart of the new C&B implementation (paper section 3.1).  Each
constraint premise is compiled *once*, when the constraint is registered,
into a :class:`CompiledConjunction`: an ordered sequence of scan/hash-join
steps with selections (repeated variables, constants) pushed into the probe
keys.  Evaluating that compiled plan over the symbolic instance ``Inst(Q)``
produces, in bulk, all homomorphisms from the premise into the query body --
replacing the tuple-at-a-time backtracking of the original prototype.

The extension check of a chase step ("does the homomorphism extend to the
conclusion?") is performed with the same machinery: the conclusion is also
compiled, and the candidate homomorphisms that extend are computed as a
semijoin of the premise result with the conclusion result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..logical.atoms import Atom, EqualityAtom, InequalityAtom, RelationalAtom
from ..logical.terms import Constant, Term, Variable, is_variable
from .homomorphism import Homomorphism, _filters_hold
from .symbolic_instance import SymbolicInstance


@dataclass(frozen=True)
class _JoinStep:
    """One step of the compiled plan: probe *atom* using *key_positions*.

    ``key_positions`` are the positions of the atom whose value is known
    before the step runs (constants or variables bound by earlier steps);
    they form the hash key used to probe the symbolic instance's index.
    ``new_variables`` lists the variables first bound by this step, together
    with the positions they are read from.
    """

    atom: RelationalAtom
    key_positions: Tuple[int, ...]
    key_terms: Tuple[Term, ...]
    check_positions: Tuple[Tuple[int, Term], ...]
    new_variables: Tuple[Tuple[Variable, int], ...]


class CompiledConjunction:
    """A conjunction of atoms compiled to a pipeline of hash-join probes."""

    def __init__(
        self,
        atoms: Sequence[Atom],
        seed_variables: Sequence[Variable] = (),
    ):
        self.atoms = tuple(atoms)
        self.relational = [a for a in atoms if isinstance(a, RelationalAtom)]
        self.filters = [a for a in atoms if not isinstance(a, RelationalAtom)]
        self._steps = self._compile(tuple(seed_variables))
        self.variables = self._collect_variables()

    def _collect_variables(self) -> Tuple[Variable, ...]:
        seen: Dict[Variable, None] = {}
        for atom in self.atoms:
            for variable in atom.variables():
                seen.setdefault(variable, None)
        return tuple(seen)

    def _compile(self, seed_variables: Tuple[Variable, ...]) -> List[_JoinStep]:
        """Choose a join order greedily (most-bound atom first) and plan each probe."""
        remaining = list(self.relational)
        bound: set = set(seed_variables)
        steps: List[_JoinStep] = []
        while remaining:
            best_index = 0
            best_score = -1
            for index, atom in enumerate(remaining):
                score = sum(
                    1
                    for term in atom.terms
                    if not is_variable(term) or term in bound
                )
                # Prefer atoms with more bound positions; break ties by arity
                # (smaller atoms first) to keep intermediate results small.
                if score > best_score or (
                    score == best_score and atom.arity < remaining[best_index].arity
                ):
                    best_score = score
                    best_index = index
            atom = remaining.pop(best_index)
            steps.append(self._plan_step(atom, bound))
            for term in atom.terms:
                if is_variable(term):
                    bound.add(term)
        return steps

    @staticmethod
    def _plan_step(atom: RelationalAtom, bound: set) -> _JoinStep:
        key_positions: List[int] = []
        key_terms: List[Term] = []
        check_positions: List[Tuple[int, Term]] = []
        new_variables: List[Tuple[Variable, int]] = []
        seen_new: Dict[Variable, int] = {}
        for position, term in enumerate(atom.terms):
            if not is_variable(term):
                key_positions.append(position)
                key_terms.append(term)
            elif term in bound:
                key_positions.append(position)
                key_terms.append(term)
            elif term in seen_new:
                # Repeated fresh variable within the same atom: selection.
                check_positions.append((position, term))
            else:
                seen_new[term] = position
                new_variables.append((term, position))
        return _JoinStep(
            atom=atom,
            key_positions=tuple(key_positions),
            key_terms=tuple(key_terms),
            check_positions=tuple(check_positions),
            new_variables=tuple(new_variables),
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        instance: SymbolicInstance,
        seeds: Optional[Sequence[Homomorphism]] = None,
        target_atoms: Sequence[Atom] = (),
        limit: Optional[int] = None,
    ) -> List[Homomorphism]:
        """All homomorphisms of the conjunction into *instance*.

        *seeds* optionally fixes the images of some variables (used for the
        extension/semijoin check).  *target_atoms* supplies the inequality
        atoms of the target query so premise inequalities can be validated.
        ``limit`` stops the evaluation early once that many results exist
        (used for existence checks).
        """
        current: List[Homomorphism] = [dict(s) for s in seeds] if seeds else [{}]
        for step in self._steps:
            if not current:
                return []
            next_bindings: List[Homomorphism] = []
            index = instance.index(step.atom.relation, step.key_positions)
            for binding in current:
                key = tuple(
                    term if isinstance(term, Constant) else binding[term]
                    for term in step.key_terms
                )
                for row in index.get(key, ()):  # hash probe
                    ok = True
                    for position, variable in step.check_positions:
                        expected = binding.get(variable)
                        if expected is None:
                            # repeated within-atom variable: compare against its
                            # first occurrence in this row
                            first_position = dict(step.new_variables).get(variable)
                            expected = row[first_position] if first_position is not None else None
                        if expected is not None and row[position] != expected:
                            ok = False
                            break
                    if not ok:
                        continue
                    extended = dict(binding)
                    clash = False
                    for variable, position in step.new_variables:
                        value = row[position]
                        previous = extended.get(variable)
                        if previous is not None and previous != value:
                            clash = True
                            break
                        extended[variable] = value
                    if clash:
                        continue
                    # validate within-atom repeats against newly bound values
                    valid = True
                    for position, variable in step.check_positions:
                        if extended.get(variable) != row[position]:
                            valid = False
                            break
                    if valid:
                        next_bindings.append(extended)
            current = next_bindings
        if self.filters:
            current = [
                binding
                for binding in current
                if _filters_hold(self.filters, target_atoms, binding)
            ]
        if limit is not None:
            current = current[:limit]
        return current


class JoinTreeHomomorphismFinder:
    """Set-oriented homomorphism finder; interface-compatible with the naive one."""

    def __init__(self):
        self._cache: Dict[Tuple[Atom, ...], CompiledConjunction] = {}

    def _compiled(self, pattern: Sequence[Atom]) -> CompiledConjunction:
        key = tuple(pattern)
        plan = self._cache.get(key)
        if plan is None:
            plan = CompiledConjunction(pattern)
            self._cache[key] = plan
        return plan

    def find_all(
        self,
        pattern: Sequence[Atom],
        target: Sequence[Atom],
        seed: Optional[Mapping[Variable, Term]] = None,
    ) -> List[Homomorphism]:
        instance = SymbolicInstance.from_atoms(target)
        return self.find_all_in_instance(pattern, instance, target, seed)

    def find_all_in_instance(
        self,
        pattern: Sequence[Atom],
        instance: SymbolicInstance,
        target_atoms: Sequence[Atom] = (),
        seed: Optional[Mapping[Variable, Term]] = None,
        limit: Optional[int] = None,
    ) -> List[Homomorphism]:
        plan = self._compiled(tuple(pattern))
        seeds = [dict(seed)] if seed else None
        return plan.evaluate(instance, seeds=seeds, target_atoms=target_atoms, limit=limit)

    def find_one(
        self,
        pattern: Sequence[Atom],
        target: Sequence[Atom],
        seed: Optional[Mapping[Variable, Term]] = None,
    ) -> Optional[Homomorphism]:
        instance = SymbolicInstance.from_atoms(target)
        results = self.find_all_in_instance(pattern, instance, target, seed, limit=1)
        return results[0] if results else None

    def exists(
        self,
        pattern: Sequence[Atom],
        target: Sequence[Atom],
        seed: Optional[Mapping[Variable, Term]] = None,
    ) -> bool:
        return self.find_one(pattern, target, seed) is not None
