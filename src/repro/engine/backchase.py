"""The backchase: enumerating minimal reformulations inside the universal plan.

After the chase produced the universal plan, every minimal reformulation of
the original query is a subquery of it (paper section 2.3, completeness
result of [11]).  The backchase inspects subqueries bottom-up, smallest
first, checking each for equivalence with the original query under the
dependencies (by chasing the subquery "back" and looking for a containment
mapping).  Cost-based pruning discards a subquery -- and all its supersets --
as soon as its cost exceeds the best reformulation found so far, which is
sound because the cost model is monotone.

Only atoms over the *target* (proprietary) schema may appear in a
reformulation; the largest such subquery is the *initial reformulation*,
which is returned even when minimization is switched off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import ReformulationError
from ..logical.atoms import RelationalAtom
from ..logical.dependencies import DED
from ..logical.queries import ConjunctiveQuery
from ..obs.timer import timer
from .containment import ContainmentChecker
from .cost import CostEstimator, SimpleCostEstimator
from .pruning import SubqueryLegality


@dataclass
class BackchaseConfig:
    """Tuning knobs for the backchase enumeration."""

    prune_by_cost: bool = True
    stop_at_first: bool = False
    max_subquery_size: Optional[int] = None
    max_inspected: int = 50_000
    verify_minimality: bool = False


@dataclass
class BackchaseResult:
    """All information produced by one backchase run."""

    original: ConjunctiveQuery
    universal_plan: ConjunctiveQuery
    initial_reformulation: Optional[ConjunctiveQuery]
    minimal_reformulations: List[ConjunctiveQuery] = field(default_factory=list)
    best: Optional[ConjunctiveQuery] = None
    best_cost: float = math.inf
    subqueries_inspected: int = 0
    equivalence_checks: int = 0
    elapsed_seconds: float = 0.0

    @property
    def found(self) -> bool:
        return self.best is not None or self.initial_reformulation is not None


class BackchaseEngine:
    """Bottom-up enumeration of minimal reformulations with cost-based pruning."""

    def __init__(
        self,
        checker: Optional[ContainmentChecker] = None,
        estimator: Optional[CostEstimator] = None,
        config: Optional[BackchaseConfig] = None,
    ):
        self.checker = checker or ContainmentChecker()
        self.estimator = estimator or SimpleCostEstimator()
        self.config = config or BackchaseConfig()

    # ------------------------------------------------------------------
    def target_atoms(
        self,
        universal_plan: ConjunctiveQuery,
        target_relations: Optional[Set[str]],
    ) -> Tuple[RelationalAtom, ...]:
        """Atoms of the universal plan allowed to appear in reformulations."""
        atoms = universal_plan.relational_body
        if target_relations is None:
            return atoms
        return tuple(a for a in atoms if a.relation in target_relations)

    def initial_reformulation(
        self,
        original: ConjunctiveQuery,
        universal_plan: ConjunctiveQuery,
        dependencies: Sequence[DED],
        target_relations: Optional[Set[str]] = None,
        verify: bool = True,
    ) -> Optional[ConjunctiveQuery]:
        """The largest subquery induced by proprietary-schema atoms.

        Paper section 2.3: if any reformulation exists, this one is a
        reformulation too (generally not minimal).  When *verify* is set the
        equivalence is checked explicitly and ``None`` is returned if it
        fails (meaning no reformulation exists at all).
        """
        atoms = self.target_atoms(universal_plan, target_relations)
        if not atoms:
            return None
        candidate = universal_plan.subquery(atoms).with_name(f"{original.name}_initial")
        if not candidate.is_safe():
            return None
        if verify and not self.checker.is_equivalent_subquery(
            candidate, original, dependencies
        ):
            return None
        return candidate

    # ------------------------------------------------------------------
    def backchase(
        self,
        original: ConjunctiveQuery,
        universal_plan: ConjunctiveQuery,
        dependencies: Sequence[DED],
        target_relations: Optional[Set[str]] = None,
        legality: Optional[SubqueryLegality] = None,
    ) -> BackchaseResult:
        """Enumerate minimal reformulations of *original* inside *universal_plan*."""
        clock = timer()
        candidates = self.target_atoms(universal_plan, target_relations)
        result = BackchaseResult(
            original=original,
            universal_plan=universal_plan,
            initial_reformulation=self.initial_reformulation(
                original, universal_plan, dependencies, target_relations
            ),
        )
        if not candidates:
            result.elapsed_seconds = clock.elapsed
            return result
        if legality is None:
            legality = SubqueryLegality(candidates, specs=(), enabled=False)
        if self.config.prune_by_cost and result.initial_reformulation is not None:
            # The initial reformulation is itself a reformulation, so its cost
            # is a sound upper bound that lets pruning start immediately
            # (the "best cost seen so far" of the paper's backchase).
            result.best_cost = self.estimator.estimate(result.initial_reformulation)

        index_of = {atom: i for i, atom in enumerate(candidates)}
        max_size = self.config.max_subquery_size or len(candidates)
        found_sets: List[FrozenSet[int]] = []
        seen: Set[FrozenSet[int]] = set()

        def record_reformulation(subset: FrozenSet[int], query: ConjunctiveQuery, cost: float):
            named = query.with_name(f"{original.name}_reform{len(result.minimal_reformulations)}")
            result.minimal_reformulations.append(named)
            found_sets.append(subset)
            if result.best is None or cost < result.best_cost:
                result.best_cost = min(cost, result.best_cost)
                result.best = named

        # Level 1: entry atoms.
        level: List[FrozenSet[int]] = []
        for index, atom in enumerate(candidates):
            if legality.is_entry(atom):
                subset = frozenset((index,))
                seen.add(subset)
                level.append(subset)

        while level:
            next_level: List[FrozenSet[int]] = []
            if len(level) <= 512:
                # Process cheap subsets first so that reformulations found
                # early drive the cost-based pruning of the rest of the level.
                level.sort(
                    key=lambda subset: self.estimator.estimate(
                        universal_plan.subquery([candidates[i] for i in sorted(subset)])
                    )
                )
            for subset in level:
                if result.subqueries_inspected >= self.config.max_inspected:
                    result.elapsed_seconds = clock.elapsed
                    return result
                if any(found <= subset for found in found_sets):
                    continue  # supersets of reformulations are never minimal
                atoms = [candidates[i] for i in sorted(subset)]
                subquery = universal_plan.subquery(atoms)
                result.subqueries_inspected += 1
                # Cost-based pruning applies to every candidate (safe or not):
                # the cost model is monotone, so once a subquery is costlier
                # than the best reformulation found, so is every superset.
                cost = self.estimator.estimate(subquery)
                if self.config.prune_by_cost and cost > result.best_cost:
                    continue  # prune this subquery and all its supersets
                if subquery.is_safe():
                    result.equivalence_checks += 1
                    if self.checker.is_equivalent_subquery(subquery, original, dependencies):
                        if self.config.verify_minimality and not self._is_minimal_within(
                            subquery, original, dependencies
                        ):
                            pass
                        else:
                            record_reformulation(subset, subquery, cost)
                            if self.config.stop_at_first:
                                result.elapsed_seconds = clock.elapsed
                                return result
                            continue  # supersets cannot be minimal
                if len(subset) >= max_size:
                    continue
                for index, atom in enumerate(candidates):
                    if index in subset:
                        continue
                    extended = subset | {index}
                    if extended in seen:
                        continue
                    if not legality.can_extend(atoms, atom):
                        continue
                    seen.add(extended)
                    next_level.append(extended)
            level = next_level

        result.elapsed_seconds = clock.elapsed
        return result

    # ------------------------------------------------------------------
    def _is_minimal_within(
        self,
        query: ConjunctiveQuery,
        original: ConjunctiveQuery,
        dependencies: Sequence[DED],
    ) -> bool:
        """Double-check minimality by trying to drop each atom of *query*."""
        atoms = query.relational_body
        for index in range(len(atoms)):
            reduced = query.subquery(atoms[:index] + atoms[index + 1 :])
            if not reduced.is_safe():
                continue
            if self.checker.is_equivalent_subquery(reduced, original, dependencies):
                return False
        return True
