"""Short-cutting the chase with the reflexive-transitive-closure axioms.

Paper section 3.2: the result of chasing a query solely with the
``(refl)``, ``(base)`` and ``(trans)`` axioms of TIX is predictable -- it
adds exactly the ``desc`` atoms missing from the reflexive, transitive
closure of the ``child``/``desc`` atoms already present.  Instead of paying
``O(n^2)`` chase steps we compute the closure directly on the symbolic
instance (an adjacency-structure traversal) and jump straight to chasing
with the remaining dependencies, alternating the two phases until a global
fixpoint is reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..logical.atoms import Atom, RelationalAtom
from ..logical.dependencies import DED
from ..logical.queries import ConjunctiveQuery
from ..logical.terms import Term
from .chase import ChaseConfig, ChaseEngine, ChaseResult, ChaseStatistics


@dataclass(frozen=True)
class ClosureSpec:
    """Relation names of one document's GReX encoding, for closure purposes."""

    child: str = "child"
    desc: str = "desc"
    el: str = "el"
    root: str = "root"
    tag: str = "tag"
    text: str = "text"
    attr: str = "attr"
    id: str = "id"

    def node_producing_relations(self) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
        """Relations whose listed argument positions hold element nodes."""
        return (
            (self.child, (0, 1)),
            (self.desc, (0, 1)),
            (self.el, (0,)),
            (self.root, (0,)),
            (self.tag, (0,)),
            (self.text, (0,)),
            (self.attr, (0,)),
            (self.id, (0,)),
        )


def descendant_closure(
    query: ConjunctiveQuery, specs: Sequence[ClosureSpec]
) -> Tuple[ConjunctiveQuery, int]:
    """Saturate *query* with the element and descendant atoms of the closure.

    For each document family in *specs*, every term known to denote an
    element node receives an ``el`` atom and a reflexive ``desc`` atom, and
    every pair of nodes connected by a path of ``child``/``desc`` edges
    receives a ``desc`` atom.  Returns the saturated query and the number of
    atoms added (the number of chase steps that were skipped).
    """
    added_atoms: List[Atom] = []
    existing: Set[Atom] = set(query.body)

    def add(atom: RelationalAtom) -> None:
        if atom not in existing:
            existing.add(atom)
            added_atoms.append(atom)

    for spec in specs:
        nodes: Dict[Term, None] = {}
        edges: Dict[Term, Set[Term]] = {}
        for atom in query.relational_body:
            for relation, positions in spec.node_producing_relations():
                if atom.relation == relation:
                    for position in positions:
                        if position < atom.arity:
                            nodes.setdefault(atom.terms[position], None)
            if atom.relation in (spec.child, spec.desc) and atom.arity == 2:
                edges.setdefault(atom.terms[0], set()).add(atom.terms[1])
        # Element-ness and reflexivity.
        for node in nodes:
            add(RelationalAtom(spec.el, (node,)))
            add(RelationalAtom(spec.desc, (node, node)))
        # Transitive closure by BFS from every node.
        for start in nodes:
            frontier = list(edges.get(start, ()))
            reached: Set[Term] = set()
            while frontier:
                node = frontier.pop()
                if node in reached:
                    continue
                reached.add(node)
                frontier.extend(edges.get(node, ()))
            for node in reached:
                add(RelationalAtom(spec.desc, (start, node)))
    if not added_atoms:
        return query, 0
    return query.add_atoms(added_atoms), len(added_atoms)


def closure_dependency_names() -> Tuple[str, ...]:
    """Names of the TIX axioms whose effect the closure subsumes."""
    return (
        "tix_base",
        "tix_trans",
        "tix_refl",
        "tix_child_el_parent",
        "tix_child_el_child",
        "tix_desc_el_source",
        "tix_desc_el_target",
        "tix_root_el",
        "tix_tag_el",
        "tix_text_el",
        "tix_attr_el",
        "tix_id_el",
    )


class ShortcutChaseEngine:
    """Chase engine that alternates direct closure computation with chasing.

    The conceptual implementation from the paper::

        repeat until no more chase step applies:
          (1) chase with (refl),(base),(trans) until termination
          (2) continue with all other DEDs until termination

    Phase (1) is replaced by :func:`descendant_closure`.
    """

    def __init__(
        self,
        specs: Sequence[ClosureSpec],
        config: Optional[ChaseConfig] = None,
        max_rounds: int = 50,
    ):
        self.specs = tuple(specs)
        self.config = config or ChaseConfig()
        self.max_rounds = max_rounds
        self._engine = ChaseEngine(self.config)

    def chase(
        self, query: ConjunctiveQuery, dependencies: Sequence[DED]
    ) -> ChaseResult:
        """Chase *query*, short-cutting the closure axioms."""
        prefixes = closure_dependency_names()
        other = [
            d
            for d in dependencies
            if not any(d.name == p or d.name.startswith(p + "__") for p in prefixes)
        ]
        statistics = ChaseStatistics()
        current_branches = [query]
        for _ in range(self.max_rounds):
            closed_branches: List[ConjunctiveQuery] = []
            closure_added = 0
            for branch in current_branches:
                closed, added = descendant_closure(branch, self.specs)
                closure_added += added
                closed_branches.append(closed)
            statistics.steps_applied += closure_added
            next_branches: List[ConjunctiveQuery] = []
            chase_added = 0
            for branch in closed_branches:
                result = self._engine.chase(branch, other)
                chase_added += result.statistics.steps_applied
                statistics.steps_applied += result.statistics.steps_applied
                statistics.homomorphisms_found += result.statistics.homomorphisms_found
                for name, count in result.statistics.dependencies_fired.items():
                    statistics.dependencies_fired[name] = (
                        statistics.dependencies_fired.get(name, 0) + count
                    )
                next_branches.extend(result.branches)
            current_branches = next_branches
            if chase_added == 0 and closure_added == 0:
                break
            if chase_added == 0:
                # The chase phase added nothing, so the closure is already stable.
                break
        statistics.branches = max(1, len(current_branches))
        return ChaseResult(original=query, branches=current_branches, statistics=statistics)
