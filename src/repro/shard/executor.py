"""Fan-out execution of per-shard sub-queries on a thread pool.

The :class:`ScatterGatherExecutor` runs one thunk per shard and returns the
results in shard order.  Parallelism is real for the ``sqlite`` child
backends — ``sqlite3`` releases the GIL while stepping a statement — and
harmless for ``memory`` children (pure Python, serialized by the GIL, but
the fan-out still overlaps with any engine that does release it, which is
exactly the mixed-storage deployment the paper targets).

The thread pool is created lazily (a backend that only ever sees
single-shard pruned queries never starts a thread) and sized to the shard
count by default.  A single-task scatter runs inline on the calling thread:
the pruned fast path must not pay a thread hop.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")

Task = Tuple[int, Callable[[], T]]


class ScatterGatherExecutor:
    """Runs per-shard thunks concurrently and collects results in order."""

    def __init__(self, max_workers: int, name: str = "shard"):
        if max_workers < 1:
            raise ValueError(f"scatter/gather needs max_workers >= 1, got {max_workers}")
        self._max_workers = max_workers
        self._name = name
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix=f"mars-{self._name}",
                )
            return self._pool

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task]) -> List[Tuple[int, T]]:
        """Execute every ``(shard_id, thunk)`` and return ``(shard_id, result)``.

        Results keep the order of *tasks* (callers pass shards in ascending
        id order, so merges are deterministic).  The first thunk exception
        propagates to the caller after all futures were issued.
        """
        if not tasks:
            return []
        if len(tasks) == 1:
            shard_id, thunk = tasks[0]
            return [(shard_id, thunk())]
        pool = self._ensure_pool()
        futures = [(shard_id, pool.submit(thunk)) for shard_id, thunk in tasks]
        return [(shard_id, future.result()) for shard_id, future in futures]

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


def merge_rows(
    per_shard: Sequence[Tuple[int, List[tuple]]], distinct: bool
) -> List[tuple]:
    """Combine per-shard answers under set (*distinct*) or bag semantics.

    Partitioned fragments are disjoint, so bag semantics is plain
    concatenation in shard order; set semantics de-duplicates across shards
    (each shard already de-duplicated its own answer).
    """
    if not distinct:
        combined: List[tuple] = []
        for _shard, rows in per_shard:
            combined.extend(rows)
        return combined
    seen: set = set()
    merged: List[tuple] = []
    for _shard, rows in per_shard:
        for row in rows:
            if row not in seen:
                seen.add(row)
                merged.append(row)
    return merged
