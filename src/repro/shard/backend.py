"""The sharded storage backend: N child engines behind one ``StorageBackend``.

Horizontal partitioning for the MARS proprietary store.  A
:class:`ShardedBackend` owns ``shards`` child backends — any registered
engine per shard, so a deployment can mix ``memory`` and ``sqlite``
children in one sharded store, honouring the paper's mixed-storage theme —
and splits each table's rows across them:

* tables named in *partition_keys* are split by a
  :class:`~repro.shard.partitioner.Partitioner` (hash by default, range on
  request) on the chosen column;
* every other table is **broadcast**: replicated in full on each shard
  (dimension tables, GReX encodings of stored XML documents).

Queries go through the :class:`~repro.shard.router.ShardRouter`: a query
that binds a partition key to a constant executes on exactly one shard (no
fan-out), co-partitioned joins scatter across all shards on the
:class:`~repro.shard.executor.ScatterGatherExecutor` thread pool and merge
under set/bag semantics, and arbitrary cross-shard joins fall back to
fetching pruned fragments into a coordinator-local scratch store.  Unions
route per disjunct.

Select it like any other engine: ``create_backend("sharded", shards=4,
children=("memory", "sqlite", "sqlite", "memory"), partition_keys={...})``,
or set ``MarsConfiguration.backend = "sharded"`` (shard count defaults to
the ``MARS_SHARDS`` environment variable) and declare partition keys with
``configuration.set_partition_key(table, column)``.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import EvaluationError, SchemaError, StorageError
from ..logical.queries import ConjunctiveQuery, UnionQuery
from ..obs.trace import current_span
from ..profile import (
    MERGE,
    NULL_PROFILE,
    SHARD_FRAGMENT,
    UNION_BRANCH,
    current_profile,
)
from ..storage.backends.base import Query, Row, StorageBackend, create_backend
from ..storage.backends.memory import MemoryBackend
from .executor import ScatterGatherExecutor, merge_rows
from .partitioner import HashPartitioner, Partitioner, PartitionSpec
from .router import (
    MODE_GATHER,
    MODE_SINGLE,
    RoutePlan,
    RouterStats,
    ShardRouter,
)

DEFAULT_SHARD_COUNT = 2

ChildSpec = Union[str, type, StorageBackend]


def route_changeset(
    changeset: "ChangeSet",
    specs: Mapping[str, PartitionSpec],
    shard_count: int,
    require_table,
) -> Dict[int, "ChangeSet"]:
    """Split a change set across a shard layout (see ``ShardedBackend``).

    Exposed as a function so the online rebalancer can route the mutation
    log tail into a *new* layout before that layout is adopted by the live
    backend.  *require_table* is called with each relation name and must
    raise for unknown tables.
    """
    # Imported here: repro.replica imports this module for the rebalancer,
    # so a top-level import would cycle during package initialization.
    from ..replica.changeset import ChangeSet, TableChange

    per_shard: Dict[int, Dict[str, Dict[str, List[Tuple[object, ...]]]]] = {}

    def bucket(shard: int, relation: str) -> Dict[str, List[Tuple[object, ...]]]:
        tables = per_shard.setdefault(shard, {})
        return tables.setdefault(relation, {"ins": [], "del": []})

    for change in changeset.changes:
        require_table(change.relation)
        spec = specs.get(change.relation)
        if spec is None:
            for shard in range(shard_count):
                slot = bucket(shard, change.relation)
                slot["ins"].extend(change.inserts)
                slot["del"].extend(change.deletes)
            continue
        for row in change.inserts:
            shard = spec.partitioner.shard_of(row[spec.position], shard_count)
            bucket(shard, change.relation)["ins"].append(row)
        for row in change.deletes:
            shard = spec.partitioner.shard_of(row[spec.position], shard_count)
            bucket(shard, change.relation)["del"].append(row)
    routed: Dict[int, ChangeSet] = {}
    for shard, tables in per_shard.items():
        changes = tuple(
            TableChange(
                relation=relation,
                inserts=tuple(slot["ins"]),
                deletes=tuple(slot["del"]),
            )
            for relation, slot in tables.items()
        )
        routed[shard] = ChangeSet(changes=changes)
    return routed


def default_shard_count() -> int:
    """Shard count used when none is specified: ``MARS_SHARDS`` or 2."""
    raw = os.environ.get("MARS_SHARDS", "").strip()
    if not raw:
        return DEFAULT_SHARD_COUNT
    try:
        count = int(raw)
    except ValueError as error:
        raise StorageError(f"MARS_SHARDS must be an integer, got {raw!r}") from error
    if count < 1:
        raise StorageError(f"MARS_SHARDS must be >= 1, got {count}")
    return count


@dataclass(frozen=True)
class ShardStats:
    """Per-shard execution counters plus the router's routing outcomes."""

    shard_count: int
    #: Full-query executions per shard (single-shard and scatter modes).
    executions_per_shard: Tuple[int, ...]
    #: Fragment fetches per shard performed by gather-mode execution.
    gather_fetches_per_shard: Tuple[int, ...]
    router: RouterStats


class ShardedBackend(StorageBackend):
    """A :class:`StorageBackend` that partitions tables over child backends."""

    backend_name = "sharded"

    def __init__(
        self,
        shards: Optional[int] = None,
        children: Union[None, ChildSpec, Sequence[ChildSpec]] = None,
        partition_keys: Optional[Mapping[str, Union[str, int]]] = None,
        partitioners: Optional[Mapping[str, Partitioner]] = None,
        max_workers: Optional[int] = None,
    ):
        specs = self._resolve_child_specs(shards, children)
        self.shard_count = len(specs)
        self._children: List[StorageBackend] = []
        try:
            for spec in specs:
                self._children.append(self._create_child(spec))
        except Exception:
            for child in self._children:
                if not child.closed:
                    child.close()
            raise
        self._partition_keys: Dict[str, Union[str, int]] = dict(partition_keys or {})
        self._partitioners: Dict[str, Partitioner] = dict(partitioners or {})
        self._arities: Dict[str, int] = {}
        self._attributes: Dict[str, Tuple[str, ...]] = {}
        self._specs: Dict[str, PartitionSpec] = {}
        self.router = ShardRouter(self._specs, self.shard_count)
        self._max_workers = max_workers or self.shard_count
        self._sg = ScatterGatherExecutor(self._max_workers)
        self._stats_lock = threading.Lock()
        self._executions = [0] * self.shard_count
        self._gather_fetches = [0] * self.shard_count
        self._catalog = None
        #: Bumped by every :meth:`adopt_layout` (online rebalance cutover);
        #: consumers holding per-layout state (per-shard pools, cached
        #: statistics) key on it to notice a swap.
        self.layout_version = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_child_specs(
        shards: Optional[int],
        children: Union[None, ChildSpec, Sequence[ChildSpec]],
    ) -> List[ChildSpec]:
        if children is None or isinstance(children, (str, type, StorageBackend)):
            count = shards if shards is not None else default_shard_count()
            if count < 1:
                raise StorageError(f"sharded backend needs shards >= 1, got {count}")
            return [children if children is not None else "memory"] * count
        specs = list(children)
        if not specs:
            raise StorageError("sharded backend needs at least one child")
        if shards is not None and shards != len(specs):
            raise StorageError(
                f"shards={shards} does not match the {len(specs)} child "
                "backend specifications"
            )
        return specs

    @staticmethod
    def _create_child(spec: ChildSpec) -> StorageBackend:
        if spec == "sharded" or (
            isinstance(spec, type) and issubclass(spec, ShardedBackend)
        ):
            raise StorageError("sharded backends cannot nest sharded children")
        if isinstance(spec, StorageBackend):
            return spec
        # SQLite children must be thread-portable: the scatter/gather pool
        # executes them from worker threads, not the constructing thread.
        try:
            return create_backend(spec, check_same_thread=False)
        except TypeError:
            return create_backend(spec)

    @property
    def children(self) -> Tuple[StorageBackend, ...]:
        """The child backends, in shard order (shard ``i`` is ``children[i]``)."""
        return tuple(self._children)

    def partition_spec(self, table: str) -> Optional[PartitionSpec]:
        """The partitioning of *table*, or ``None`` when it is broadcast."""
        return self._specs.get(table)

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError(
                "ShardedBackend has been closed; create a new backend instead"
            )

    # ------------------------------------------------------------------
    # Schema and data loading
    # ------------------------------------------------------------------
    def create_table(
        self, name: str, arity: int, attributes: Optional[Sequence[str]] = None
    ) -> None:
        self._require_open()
        if name in self._arities:
            raise SchemaError(f"table {name} already exists")
        if attributes is not None and len(attributes) != arity:
            raise SchemaError(f"table {name}: attribute count does not match arity")
        columns = (
            tuple(attributes) if attributes else tuple(f"c{i}" for i in range(arity))
        )
        for child in self._children:
            child.create_table(name, arity, columns)
        self._arities[name] = arity
        self._attributes[name] = columns
        key = self._partition_keys.get(name)
        if key is not None:
            self._specs[name] = self._build_spec(name, key, columns)

    def _build_spec(
        self, name: str, key: Union[str, int], columns: Tuple[str, ...]
    ) -> PartitionSpec:
        if isinstance(key, int):
            if not 0 <= key < len(columns):
                raise SchemaError(
                    f"table {name}: partition-key position {key} is out of "
                    f"range for arity {len(columns)}"
                )
            position = key
        else:
            try:
                position = columns.index(key)
            except ValueError as error:
                raise SchemaError(
                    f"table {name}: partition-key column {key!r} is not one "
                    f"of {columns}"
                ) from error
        partitioner = self._partitioners.get(name, HashPartitioner())
        return PartitionSpec(
            table=name,
            column=columns[position],
            position=position,
            partitioner=partitioner,
        )

    def has_table(self, name: str) -> bool:
        return name in self._arities

    def clear_table(self, name: str) -> None:
        self._require_table(name)
        for child in self._children:
            child.clear_table(name)

    def insert_many(self, name: str, rows: Iterable[Sequence[object]]) -> None:
        arity = self._require_table(name)
        prepared: List[Tuple[object, ...]] = []
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise EvaluationError(
                    f"table {name}: expected {arity} values, got {len(row)}"
                )
            prepared.append(row)
        if not prepared:
            return
        spec = self._specs.get(name)
        if spec is None:
            for child in self._children:
                child.insert_many(name, prepared)
            return
        buckets: Dict[int, List[Tuple[object, ...]]] = {}
        for row in prepared:
            shard = spec.partitioner.shard_of(row[spec.position], self.shard_count)
            buckets.setdefault(shard, []).append(row)
        for shard, bucket in buckets.items():
            self._children[shard].insert_many(name, bucket)

    def delete_many(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        """Route deletes like inserts: by partition key, broadcast otherwise."""
        self._require_table(name)
        prepared = [tuple(row) for row in rows]
        if not prepared:
            return 0
        spec = self._specs.get(name)
        if spec is None:
            # Broadcast tables hold the same rows everywhere: every child
            # removes its own occurrence and they stay in lockstep.
            return max(
                child.delete_many(name, prepared) for child in self._children
            )
        buckets: Dict[int, List[Tuple[object, ...]]] = {}
        for row in prepared:
            shard = spec.partitioner.shard_of(row[spec.position], self.shard_count)
            buckets.setdefault(shard, []).append(row)
        return sum(
            self._children[shard].delete_many(name, bucket)
            for shard, bucket in buckets.items()
        )

    # ------------------------------------------------------------------
    # Write path (change sets)
    # ------------------------------------------------------------------
    def route_changeset(self, changeset: "ChangeSet") -> Dict[int, "ChangeSet"]:
        """Split *changeset* into the per-shard change sets to apply.

        Rows of partitioned tables go to the shard their partitioner
        names; changes to broadcast tables appear in **every** shard's
        change set (batched per shard, so a broadcast write is one
        ``apply`` per shard, not one per row).  Shards untouched by the
        change set are absent from the result.
        """
        return route_changeset(
            changeset, self._specs, self.shard_count, self._require_table
        )

    def apply(self, changeset: "ChangeSet") -> None:
        """Apply a change set by routing it to the owning shards."""
        for shard, sub in sorted(self.route_changeset(changeset).items()):
            self._children[shard].apply(sub)

    def _require_table(self, name: str) -> int:
        self._require_open()
        try:
            return self._arities[name]
        except KeyError as error:
            raise EvaluationError(f"unknown table {name!r}") from error

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def table_names(self) -> Tuple[str, ...]:
        return tuple(self._arities)

    def rows(self, name: str) -> Sequence[Row]:
        self._require_table(name)
        if name not in self._specs:
            return self._children[0].rows(name)
        combined: List[Row] = []
        for child in self._children:
            combined.extend(tuple(row) for row in child.rows(name))
        return tuple(combined)

    def cardinalities(self) -> Dict[str, int]:
        self._require_open()
        return {name: self.cardinality(name) for name in self._arities}

    def cardinality(self, name: str) -> int:
        self._require_open()
        if name not in self._arities:
            return 0
        if name not in self._specs:
            return self._children[0].cardinality(name)
        return sum(child.cardinality(name) for child in self._children)

    def fragment_cardinalities(self, name: str) -> Tuple[int, ...]:
        """Row counts of *name* per shard (broadcast tables repeat the count)."""
        self._require_table(name)
        return tuple(child.cardinality(name) for child in self._children)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def collect_statistics(self) -> "StatisticsCatalog":
        """Merge the children's catalogs into one sharded-store catalog.

        Partitioned tables sum their fragments: row counts add up, and so
        do the distinct counts of the partition-key column (a key value
        lives on exactly one shard); other columns' distinct counts overlap
        across shards, so the merge takes the maximum (a lower bound) and
        caps it at the merged row count.  Broadcast tables are complete on
        every shard — one child's statistics describe them.  Every entry
        records its per-shard ``fragment_rows``.
        """
        from ..cost.statistics import StatisticsCatalog, TableStatistics

        self._require_open()
        child_catalogs = [child.collect_statistics() for child in self._children]
        catalog = StatisticsCatalog()
        for name, arity in self._arities.items():
            fragments = tuple(
                float(child.row_count(name)) if name in child else 0.0
                for child in child_catalogs
            )
            spec = self._specs.get(name)
            if spec is None:
                base = child_catalogs[0].table(name)
                row_count = base.row_count if base is not None else 0.0
                distinct = base.distinct_counts if base is not None else ()
            else:
                row_count = sum(fragments)
                distinct = []
                for position in range(arity):
                    known = [
                        child.distinct(name, position)
                        for child in child_catalogs
                        if child.distinct(name, position) is not None
                    ]
                    if not known:
                        distinct.append(0.0)
                    elif position == spec.position:
                        distinct.append(min(row_count, sum(known)))
                    else:
                        distinct.append(min(row_count, max(known)))
                distinct = tuple(distinct)
            catalog.add(
                TableStatistics(
                    name=name,
                    row_count=row_count,
                    distinct_counts=tuple(distinct),
                    fragment_rows=fragments,
                )
            )
        return catalog

    def refresh_statistics(
        self, access_weights: Optional[Mapping[str, float]] = None
    ) -> "StatisticsCatalog":
        """Re-collect statistics and hand the router a fresh cost model.

        Until this is called the router decides by its sound fixed rules;
        afterwards it compares modeled costs for the decisions where more
        than one mode is sound (scatter vs gather on co-partitioned
        queries).  Call it again after bulk loads — statistics are a
        snapshot, not a subscription.
        """
        from ..cost.model import CostModel

        catalog = self.collect_statistics()
        if access_weights:
            for relation, weight in access_weights.items():
                catalog.set_weight(relation, weight)
        self._catalog = catalog
        self.router.set_cost_model(CostModel(catalog))
        return catalog

    @property
    def statistics_catalog(self):
        """The catalog of the last :meth:`refresh_statistics` (or ``None``)."""
        return self._catalog

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def route_plan(self, plan: Query, annotate: bool = False) -> RoutePlan:
        """The routing decisions for *plan* (one per union disjunct)."""
        self._require_open()
        return self.router.route_plan(plan, annotate=annotate)

    def execute(self, query: Query, distinct: bool = True) -> List[Row]:
        with current_span().child("route") as span:
            # With a profile active, pay for the describe-only cost
            # annotations too: the profile nodes should carry the chosen
            # *and* rejected estimates, not just the modes.
            plan = self.route_plan(query, annotate=bool(current_profile()))
            span.annotate(
                disjuncts=len(plan.decisions),
                modes=[decision.mode for _q, decision in plan.decisions],
                shards=sorted(plan.needed_shards),
            )
        return self.execute_routed(plan, query, distinct)

    def execute_union(self, union: Query, distinct: bool = True) -> List[Row]:
        """Unions route per disjunct; see :meth:`execute`."""
        return self.execute(union, distinct=distinct)

    def execute_routed(
        self,
        plan: RoutePlan,
        query: Query,
        distinct: bool = True,
        children: Optional[Mapping[int, StorageBackend]] = None,
    ) -> List[Row]:
        """Execute *query* under an already-computed :class:`RoutePlan`.

        *children* substitutes the engines used per shard — the publishing
        service passes pool-checked-out clones here, keyed by shard id and
        covering at least ``plan.needed_shards``.  ``None`` uses this
        backend's own children.
        """
        self._require_open()
        engines: Mapping[int, StorageBackend] = (
            children if children is not None else dict(enumerate(self._children))
        )
        # The ambient span is thread-local; capture it here so the task
        # closures below can parent their per-shard spans from the
        # scatter/gather worker threads.  The ambient profile node is
        # captured for the same reason: per-shard fragment profiles are
        # built on worker threads and grafted under the decision node.
        parent = current_span()
        profile = current_profile()
        is_union = isinstance(query, UnionQuery)
        if (
            is_union
            and len(plan.decisions) > 1
            and all(
                decision.mode == MODE_GATHER for _q, decision in plan.decisions
            )
        ):
            # Routed-union batching: every disjunct gathers, so the pruned
            # fragments are fetched once into one shared scratch store and
            # each disjunct evaluates there, instead of re-fetching a
            # fragment per disjunct that mentions it.
            return self._execute_gather_union(plan, distinct, engines)
        per_disjunct: List[List[Row]] = []
        for position, (disjunct, decision) in enumerate(plan.decisions):
            if profile:
                # The scatter/gather node the per-shard fragment profiles
                # graft under, carrying the router's decision — mode,
                # reason, and (when a cost model priced it) the chosen and
                # rejected-alternative costs.
                decision_node = profile.child(
                    UNION_BRANCH if is_union else decision.mode,
                    disjunct.name,
                    disjunct=position,
                    **decision.profile_attributes(),
                )
            else:
                decision_node = NULL_PROFILE
            if decision.mode == MODE_GATHER:
                with parent.child(
                    "shard.gather", shards=sorted(decision.shards)
                ):
                    with decision_node:
                        rows = self._execute_gather(
                            decision, disjunct, distinct, engines
                        )
                    decision_node.finish(actual_rows=len(rows))
            else:
                tasks = [
                    (
                        shard,
                        lambda shard=shard: self._traced_shard_execute(
                            parent,
                            decision_node,
                            shard,
                            engines[shard],
                            disjunct,
                            distinct,
                        ),
                    )
                    for shard in decision.shards
                ]
                results = self._sg.run(tasks)
                with self._stats_lock:
                    for shard in decision.shards:
                        self._executions[shard] += 1
                merge_node = decision_node.child(
                    MERGE, f"{disjunct.name}[merge]", inputs=len(results)
                )
                with parent.child("merge", inputs=len(results)) as merge_span:
                    rows = merge_rows(results, distinct)
                    merge_span.annotate(rows=len(rows))
                merge_node.finish(actual_rows=len(rows))
                decision_node.finish(actual_rows=len(rows))
            per_disjunct.append(rows)
        if not is_union:
            return per_disjunct[0]
        # Same set/bag semantics as the per-shard merge, across disjuncts.
        union_merge = profile.child(MERGE, "union", inputs=len(per_disjunct))
        with parent.child(
            "merge", inputs=len(per_disjunct), union=True
        ) as merge_span:
            rows = merge_rows(list(enumerate(per_disjunct)), distinct)
            merge_span.annotate(rows=len(rows))
        union_merge.finish(actual_rows=len(rows))
        return rows

    @staticmethod
    def _traced_shard_execute(parent, profile_parent, shard, engine, disjunct, distinct):
        with parent.child(
            "shard.execute", shard=shard, engine=engine.backend_name
        ) as span:
            if profile_parent:
                with profile_parent.child(
                    SHARD_FRAGMENT,
                    f"{disjunct.name}@shard{shard}",
                    shard=shard,
                    engine=engine.backend_name,
                ) as fragment:
                    rows = engine.execute(disjunct, distinct=distinct)
                    fragment.finish(actual_rows=len(rows))
            else:
                rows = engine.execute(disjunct, distinct=distinct)
            span.annotate(rows=len(rows))
            return rows

    def _execute_gather(
        self,
        decision,
        query: ConjunctiveQuery,
        distinct: bool,
        engines: Mapping[int, StorageBackend],
    ) -> List[Row]:
        """Pull pruned table fragments to a scratch store and evaluate there."""
        profile = current_profile()
        scratch = MemoryBackend()
        for table, shards in decision.fetch_shards:
            arity = self._require_table(table)
            scratch.create_table(table, arity, self._attributes[table])
            fragments: List[Sequence[Row]] = []
            for shard in shards:
                fragment_rows = engines[shard].rows(table)
                if profile:
                    fragment = profile.child(
                        SHARD_FRAGMENT,
                        f"{table}@shard{shard}",
                        shard=shard,
                        relation=table,
                    )
                    fragment.finish(actual_rows=len(fragment_rows))
                fragments.append(fragment_rows)
            with self._stats_lock:
                for shard in shards:
                    self._gather_fetches[shard] += 1
            for fragment_rows in fragments:
                scratch.insert_many(table, fragment_rows)
        return scratch.execute(query, distinct=distinct)

    def _execute_gather_union(
        self,
        plan: RoutePlan,
        distinct: bool,
        engines: Mapping[int, StorageBackend],
    ) -> List[Row]:
        """Gather-only unions share one fragment-fetch pass across disjuncts.

        Partitioned fragments named by several disjuncts are fetched once
        (their shard sets are unioned — fragments are disjoint, so the
        merge is exact); broadcast tables are complete on any shard, so
        one copy is fetched even when different disjuncts' rotations named
        different shards.  The saved fetch count is recorded on the
        router's stats (``gather_unions_batched``/``fragment_fetches_saved``).
        """
        profile = current_profile()
        needed: Dict[str, set] = {}
        per_disjunct_fetches = 0
        for _disjunct, decision in plan.decisions:
            for table, shards in decision.fetch_shards:
                per_disjunct_fetches += len(shards)
                if self._specs.get(table) is None:
                    # One broadcast copy is enough; keep the first shard
                    # any disjunct named.
                    needed.setdefault(table, set(shards[:1]))
                else:
                    needed.setdefault(table, set()).update(shards)
        scratch = MemoryBackend()
        fetched = 0
        for table in sorted(needed):
            shards = sorted(needed[table])
            arity = self._require_table(table)
            scratch.create_table(table, arity, self._attributes[table])
            for shard in shards:
                fragment_rows = engines[shard].rows(table)
                if profile:
                    fragment = profile.child(
                        SHARD_FRAGMENT,
                        f"{table}@shard{shard}",
                        shard=shard,
                        relation=table,
                    )
                    fragment.finish(actual_rows=len(fragment_rows))
                scratch.insert_many(table, fragment_rows)
            fetched += len(shards)
            with self._stats_lock:
                for shard in shards:
                    self._gather_fetches[shard] += 1
        self.router.note_union_batch(per_disjunct_fetches - fetched)
        per_disjunct = []
        for index, (disjunct, decision) in enumerate(plan.decisions):
            if profile:
                with profile.child(
                    UNION_BRANCH,
                    disjunct.name,
                    disjunct=index,
                    **decision.profile_attributes(),
                ) as branch:
                    result = scratch.execute(disjunct, distinct=distinct)
                    branch.finish(actual_rows=len(result))
            else:
                result = scratch.execute(disjunct, distinct=distinct)
            per_disjunct.append((index, result))
        union_merge = profile.child(MERGE, "union", inputs=len(per_disjunct))
        rows = merge_rows(per_disjunct, distinct)
        union_merge.finish(actual_rows=len(rows))
        return rows

    def explain(self, query: Query) -> str:
        """The actual routing decisions plus the first target shard's plan.

        Every decision renders through
        :meth:`~repro.shard.router.RoutingDecision.describe_lines`, the
        same structured decision the serving path executes — so with a
        cost model attached (:meth:`refresh_statistics`) the output shows
        the chosen mode's estimate *and* the rejected alternative's cost,
        and states whether a cost comparison or a fixed rule decided,
        instead of re-deriving a rule-based story the cost model may have
        overridden.
        """
        self._require_open()
        plan = self.router.route_plan(query, annotate=True)
        lines = [
            f"sharded plan for {getattr(query, 'name', '<query>')} "
            f"({self.shard_count} shards):"
        ]
        for disjunct, decision in plan.decisions:
            described = decision.describe_lines()
            lines.append(f"  {disjunct.name}: {described[0]}")
            lines.extend(f"    {line}" for line in described[1:])
            if decision.mode == MODE_GATHER:
                continue
            child_plan = self._children[decision.shards[0]].explain(disjunct)
            lines.extend(
                f"    [shard {decision.shards[0]}] {line}"
                for line in child_plan.splitlines()
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> ShardStats:
        with self._stats_lock:
            executions = tuple(self._executions)
            fetches = tuple(self._gather_fetches)
        return ShardStats(
            shard_count=self.shard_count,
            executions_per_shard=executions,
            gather_fetches_per_shard=fetches,
            router=self.router.stats(),
        )

    # ------------------------------------------------------------------
    # Online rebalancing hooks
    # ------------------------------------------------------------------
    def adopt_layout(
        self, children: Sequence[StorageBackend]
    ) -> Tuple[StorageBackend, ...]:
        """Atomically swap in a new child set (the rebalance cutover).

        The new children must already hold every table, repartitioned
        under this backend's partition specs modulo ``len(children)`` —
        the :class:`~repro.replica.rebalancer.Rebalancer` prepares them.
        The router is rebuilt for the new shard count (same partition
        specs, same cost model), per-shard counters reset, and
        :attr:`layout_version` bumps.  The old children are returned still
        open; the caller closes them once nothing references them.

        Not safe under in-flight ``execute`` calls: the caller must gate
        execution during the swap (``PublishingService.rebalance`` holds
        its publish gate exclusively).
        """
        self._require_open()
        new_children = list(children)
        if not new_children:
            raise StorageError("adopt_layout needs at least one child")
        for child in new_children:
            for name in self._arities:
                if not child.has_table(name):
                    raise StorageError(
                        f"adopt_layout: new child is missing table {name!r}"
                    )
        old_children = tuple(self._children)
        old_sg = self._sg
        self._children = new_children
        self.shard_count = len(new_children)
        router = ShardRouter(self._specs, self.shard_count)
        router.set_cost_model(self.router.cost_model)
        self.router = router
        self._max_workers = self.shard_count
        self._sg = ScatterGatherExecutor(self._max_workers)
        with self._stats_lock:
            self._executions = [0] * self.shard_count
            self._gather_fetches = [0] * self.shard_count
        # Fragment statistics describe the old layout; drop them until the
        # caller refreshes (refresh_statistics re-feeds the router too).
        self._catalog = None
        self.layout_version += 1
        old_sg.shutdown()
        return old_children

    def release_children(self) -> Tuple[StorageBackend, ...]:
        """Hand the children to the caller and retire this shell.

        Used by the rebalancer: a staging ``ShardedBackend`` routes the
        copied fragments and the replayed log tail into the new layout,
        then releases its children for :meth:`adopt_layout` without
        closing them.  The shell itself becomes unusable (closed).
        """
        self._require_open()
        children = tuple(self._children)
        self._children = []
        self._closed = True
        self._sg.shutdown()
        return children

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def clone_is_snapshot(self) -> bool:
        """A sharded clone snapshots iff every child clone does."""
        return all(child.clone_is_snapshot for child in self._children)

    @property
    def has_mixed_snapshot_children(self) -> bool:
        """Whether children disagree on clone snapshot semantics.

        Mixed layouts (a file-backed SQLite child among snapshot
        children) can neither skip log replay (the snapshot clones would
        go stale) nor replay it (the shared-storage clones would apply
        writes twice), so pools refuse to attach a mutation log to them.
        """
        kinds = {child.clone_is_snapshot for child in self._children}
        if len(kinds) > 1:
            return True
        return any(
            getattr(child, "has_mixed_snapshot_children", False)
            for child in self._children
        )

    def close(self) -> None:
        """Close every child and stop the fan-out pool; double close raises."""
        if self._closed:
            raise StorageError("ShardedBackend.close() called twice")
        self._closed = True
        self._sg.shutdown()
        for child in self._children:
            if not child.closed:
                child.close()

    def clone(self) -> "ShardedBackend":
        """A sharded backend over clones of every child (for pooling)."""
        self._require_open()
        clone = ShardedBackend.__new__(ShardedBackend)
        clone.shard_count = self.shard_count
        clone._children = []
        try:
            for child in self._children:
                clone._children.append(child.clone())
        except Exception:
            for cloned in clone._children:
                if not cloned.closed:
                    cloned.close()
            raise
        clone._partition_keys = dict(self._partition_keys)
        clone._partitioners = dict(self._partitioners)
        clone._arities = dict(self._arities)
        clone._attributes = dict(self._attributes)
        clone._specs = dict(self._specs)
        clone.router = ShardRouter(clone._specs, clone.shard_count)
        # Clones inherit the template's cost model: pooled handles must
        # route the way the template routes (fresh outcome counters).
        clone.router.set_cost_model(self.router.cost_model)
        clone._catalog = self._catalog
        clone._max_workers = self._max_workers
        clone._sg = ScatterGatherExecutor(clone._max_workers)
        clone._stats_lock = threading.Lock()
        clone._executions = [0] * clone.shard_count
        clone._gather_fetches = [0] * clone.shard_count
        clone.layout_version = self.layout_version
        clone._closed = False
        return clone
