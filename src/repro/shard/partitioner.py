"""Partitioning policies: which shard of a sharded table holds a row.

A :class:`Partitioner` maps a *partition-key value* to a shard index.  The
:class:`~repro.shard.backend.ShardedBackend` keys each partitioned table on
one chosen column (a :class:`PartitionSpec`); tables without a spec are
*broadcast* — replicated in full on every shard — which is the right mode
for small dimension tables (and for the GReX encodings of stored XML
documents, which every shard may need to join against).

Two partitioners ship:

* :class:`HashPartitioner` — a process-stable hash of the key value modulo
  the shard count.  Stability matters: Python's builtin ``hash`` of strings
  is randomized per process (``PYTHONHASHSEED``), which would route the
  same row to different shards in different runs, so the hash here is a
  CRC-32 of the value's ``repr``.
* :class:`RangePartitioner` — explicit sorted boundaries; shard ``i`` holds
  values below ``boundaries[i]`` (the last shard takes the open tail).

Partitioners are value objects (frozen dataclasses): two tables are
*co-partitioned* exactly when their specs carry equal partitioners, which
is what the router's scatter-correctness check compares.
"""

from __future__ import annotations

import abc
import zlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import StorageError


def stable_hash(value: object) -> int:
    """A hash of *value* that is identical across processes and runs."""
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


class Partitioner(abc.ABC):
    """Maps a partition-key value to the index of the shard holding it."""

    #: Short name of the partitioning scheme ("hash", "range", ...).
    mode: str = "abstract"

    @abc.abstractmethod
    def shard_of(self, value: object, shard_count: int) -> int:
        """The shard index in ``range(shard_count)`` that owns *value*."""

    def compatible_with(self, other: "Partitioner") -> bool:
        """Whether two tables partitioned with these schemes are co-partitioned.

        Co-partitioned tables send rows with equal key values to the same
        shard, which lets the router scatter a join on the shared key
        without missing cross-shard pairs.  Value-object equality is the
        default test; schemes with laxer guarantees can override.
        """
        return self == other


@dataclass(frozen=True)
class HashPartitioner(Partitioner):
    """Uniform hash partitioning on the stable CRC-32 of the key value."""

    mode = "hash"

    def shard_of(self, value: object, shard_count: int) -> int:
        return stable_hash(value) % shard_count


@dataclass(frozen=True)
class RangePartitioner(Partitioner):
    """Range partitioning on sorted upper boundaries.

    ``boundaries[i]`` is the exclusive upper bound of shard ``i``; values at
    or above the last boundary land on the last shard.  With fewer
    boundaries than ``shard_count - 1`` the trailing shards stay empty,
    which is legal (a deployment may pre-provision shards for growth).
    """

    boundaries: Tuple[object, ...]

    mode = "range"

    def __init__(self, boundaries: Sequence[object]):
        ordered = tuple(boundaries)
        if ordered != tuple(sorted(ordered)):
            raise StorageError(
                f"range partition boundaries must be sorted, got {ordered!r}"
            )
        object.__setattr__(self, "boundaries", ordered)

    def shard_of(self, value: object, shard_count: int) -> int:
        try:
            index = bisect_right(self.boundaries, value)
        except TypeError as error:
            raise StorageError(
                f"partition-key value {value!r} is not comparable with the "
                f"range boundaries {self.boundaries!r}"
            ) from error
        return min(index, shard_count - 1)


@dataclass(frozen=True)
class PartitionSpec:
    """How one table is split: the key column and the partitioner."""

    table: str
    column: str
    position: int
    partitioner: Partitioner

    def describe(self) -> str:
        return (
            f"{self.table} {self.partitioner.mode}-partitioned "
            f"on {self.column} (position {self.position})"
        )
