"""Horizontal partitioning: sharded storage with routing and scatter/gather.

The subsystem splits the proprietary relational store over N child
backends (any registered engine per shard — mixed ``memory``/``sqlite``
deployments are first class):

* :mod:`repro.shard.partitioner` — hash/range partitioners and the
  per-table :class:`PartitionSpec`; unlisted tables are broadcast;
* :mod:`repro.shard.router` — prunes the shard set per query: bound
  partition keys execute on exactly one shard, co-partitioned joins
  scatter, arbitrary cross-shard joins gather pruned fragments.  With a
  cost model attached (``ShardedBackend.refresh_statistics()``) the
  scatter-vs-gather choice is priced from collected statistics instead of
  fixed rules, with chosen-vs-alternative estimates on every decision;
* :mod:`repro.shard.executor` — the thread-pool fan-out and set/bag merge;
* :mod:`repro.shard.backend` — :class:`ShardedBackend`, registered as
  backend name ``"sharded"``; merges child statistics catalogs and feeds
  the router's cost model.

Entry points: ``create_backend("sharded", shards=N, children=...,
partition_keys={...})``, or ``MarsConfiguration.backend = "sharded"`` with
``configuration.set_partition_key(table, column)``.
"""

from .backend import ShardedBackend, ShardStats, default_shard_count
from .executor import ScatterGatherExecutor, merge_rows
from .partitioner import (
    HashPartitioner,
    Partitioner,
    PartitionSpec,
    RangePartitioner,
    stable_hash,
)
from .router import (
    MODE_GATHER,
    MODE_SCATTER,
    MODE_SINGLE,
    RoutePlan,
    RouterStats,
    RoutingDecision,
    ShardRouter,
)

__all__ = [
    "HashPartitioner",
    "MODE_GATHER",
    "MODE_SCATTER",
    "MODE_SINGLE",
    "PartitionSpec",
    "Partitioner",
    "RangePartitioner",
    "RoutePlan",
    "RouterStats",
    "RoutingDecision",
    "ScatterGatherExecutor",
    "ShardRouter",
    "ShardStats",
    "ShardedBackend",
    "default_shard_count",
    "merge_rows",
    "stable_hash",
]
