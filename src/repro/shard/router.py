"""Shard routing: decide which shards a reformulation must touch.

Every horizontal-partitioning system needs an argument for why executing a
query per shard and merging is *correct*; the router encodes that argument
as three execution modes, picked per conjunctive query (per disjunct of a
union — each disjunct routes independently):

``single``
    The whole query runs on one shard.  Sound in two cases: (a) the query
    mentions only broadcast tables, which are complete on every shard (any
    shard answers; the router round-robins to spread load); (b) every
    partitioned atom binds its partition key to a constant and all those
    constants route to the same shard — rows matching the atoms exist
    nowhere else, so no other shard can contribute.  Case (b) is the
    *shard-pruning fast path*: no fan-out, one engine round trip.

``scatter``
    The query runs unchanged on every shard and the per-shard answers are
    merged (concatenation under bag semantics, de-duplication under set
    semantics).  Sound when all partitioned atoms carry the *same term* at
    their key position with mutually compatible partitioners: any
    satisfying assignment gives that term one value, all matching
    partitioned rows live on that value's shard, and broadcast tables are
    complete everywhere — so each answer is produced by exactly one shard
    (co-partitioned join).  A single partitioned atom is the degenerate
    co-partitioned case.

``gather``
    The fallback for arbitrary cross-shard joins (partitioned atoms keyed
    on different terms): shard fragments of the referenced tables are
    pulled to a coordinator-local scratch store and the query is evaluated
    there.  Always correct; the router still prunes the *fetch* — an atom
    that binds its key to a constant only needs that constant's shard, and
    broadcast tables are fetched from a single shard.

Where exactly one mode is sound the rules above are the whole story.  But
a co-partitioned query could also be *gathered* (gather is always
correct), and scattering it is not always cheaper: scatter pays every
broadcast table's scan once per shard, gather ships the partitioned
fragments once and scans each broadcast table once.  With a
:class:`~repro.cost.model.CostModel` attached (see
``ShardedBackend.refresh_statistics``) the router prices both modes from
collected statistics and picks the cheaper one, recording the chosen and
rejected estimates on the :class:`RoutingDecision` (surfaced by
``explain`` and counted in :class:`RouterStats`).  Without a model the
fixed rules apply unchanged.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..logical.queries import ConjunctiveQuery, UnionQuery
from ..logical.terms import Constant, Term
from .partitioner import PartitionSpec

Query = Union[ConjunctiveQuery, UnionQuery]

MODE_SINGLE = "single"
MODE_SCATTER = "scatter"
MODE_GATHER = "gather"


@dataclass(frozen=True)
class RoutingDecision:
    """How one conjunctive query executes across the shard set."""

    mode: str
    #: Shards the query itself runs on (``single``/``scatter``); empty for
    #: ``gather``, whose work is described by :attr:`fetch_shards`.
    shards: Tuple[int, ...]
    #: ``gather`` only: ``(table, shards-to-fetch-the-fragment-from)`` pairs.
    fetch_shards: Tuple[Tuple[str, Tuple[int, ...]], ...]
    reason: str
    #: Modeled cost of the chosen mode (``None`` without a cost model).
    estimated_cost: Optional[float] = None
    #: The sound-but-rejected mode and its modeled cost, when the decision
    #: was a cost comparison (co-partitioned scatter vs gather).
    alternative_mode: Optional[str] = None
    alternative_cost: Optional[float] = None
    #: Whether a cost comparison (not a fixed rule) picked the mode.
    cost_based: bool = False

    def cost_summary(self) -> str:
        """One line of chosen-vs-alternative estimates; empty without a model."""
        if self.estimated_cost is None:
            return ""
        summary = f"est. cost {self.estimated_cost:.1f} ({self.mode})"
        if self.alternative_mode is not None:
            summary += (
                f" vs {self.alternative_cost:.1f} ({self.alternative_mode}, rejected)"
            )
        return summary

    def describe_lines(self) -> Tuple[str, ...]:
        """The decision as rendered lines — one source for every explain.

        The first line is the chosen mode, its targets and the reason; a
        second line (when a cost model priced the decision) carries the
        chosen estimate and the rejected alternative's cost, flagging
        whether the mode was picked by cost comparison or by a fixed
        rule.  ``ShardedBackend.explain`` and ``ReplicatedBackend.explain``
        both render decisions through this, so the explain output always
        shows the *actual* decision the serving path would make.
        """
        if self.mode == MODE_GATHER:
            fetch = ", ".join(
                f"{table}<-shards{list(shards)}"
                for table, shards in self.fetch_shards
            )
            head = f"gather at coordinator ({fetch}) [{self.reason}]"
        elif self.mode == MODE_SINGLE:
            head = f"single-shard -> shards {list(self.shards)} [{self.reason}]"
        else:
            head = f"scatter -> shards {list(self.shards)} [{self.reason}]"
        lines = [head]
        if self.estimated_cost is not None:
            chooser = "cost comparison" if self.cost_based else "fixed rule"
            lines.append(f"{self.cost_summary()} [decided by {chooser}]")
        return tuple(lines)

    def profile_attributes(self) -> Dict[str, object]:
        """The decision as JSON-able profile-node attributes.

        This is how the router's choice — and the rejected alternative's
        cost — travels into :class:`~repro.profile.QueryProfile` trees.
        """
        attributes: Dict[str, object] = {
            "mode": self.mode,
            "reason": self.reason,
            "cost_based": self.cost_based,
        }
        if self.mode == MODE_GATHER:
            attributes["fetch_shards"] = [
                [table, list(shards)] for table, shards in self.fetch_shards
            ]
        else:
            attributes["shards"] = list(self.shards)
        if self.estimated_cost is not None:
            attributes["estimated_cost"] = round(self.estimated_cost, 3)
        if self.alternative_mode is not None:
            attributes["rejected_mode"] = self.alternative_mode
            if self.alternative_cost is not None:
                attributes["rejected_cost"] = round(self.alternative_cost, 3)
        return attributes

    @property
    def needed_shards(self) -> Tuple[int, ...]:
        """Every shard this decision touches (execution or fragment fetch)."""
        if self.mode != MODE_GATHER:
            return self.shards
        touched: Set[int] = set()
        for _table, shards in self.fetch_shards:
            touched.update(shards)
        return tuple(sorted(touched))


@dataclass(frozen=True)
class RoutePlan:
    """The routing decisions for a whole plan (one per disjunct)."""

    decisions: Tuple[Tuple[ConjunctiveQuery, RoutingDecision], ...]

    @property
    def needed_shards(self) -> Tuple[int, ...]:
        touched: Set[int] = set()
        for _query, decision in self.decisions:
            touched.update(decision.needed_shards)
        return tuple(sorted(touched))

    def describe(self) -> str:
        lines = []
        for query, decision in self.decisions:
            target = (
                f"shards {list(decision.shards)}"
                if decision.mode != MODE_GATHER
                else "coordinator (fetch "
                + ", ".join(
                    f"{table}<-{list(shards)}" for table, shards in decision.fetch_shards
                )
                + ")"
            )
            line = f"{query.name}: {decision.mode} -> {target} [{decision.reason}]"
            if decision.cost_summary():
                line += f" {decision.cost_summary()}"
            lines.append(line)
        return "\n".join(lines)


@dataclass(frozen=True)
class RouterStats:
    """Counters of routing outcomes since the router was created."""

    queries: int
    single_shard: int
    scatter: int
    gather: int
    #: Decisions where two modes were sound and a cost comparison chose
    #: (0 while no cost model is attached).
    cost_based: int = 0
    #: Cost-based decisions that overturned the rule-based default
    #: (gather chosen where the fixed rules would scatter).
    cost_overrides: int = 0
    #: Unions whose disjuncts all gathered and were executed as one batch
    #: over a shared scratch store (each pruned fragment fetched once).
    gather_unions_batched: int = 0
    #: Fragment fetches avoided by those batched gathers, relative to
    #: fetching per disjunct.
    fragment_fetches_saved: int = 0


class ShardRouter:
    """Prunes the shard set of queries over a fixed partitioning layout.

    *specs* is the live ``table -> PartitionSpec`` mapping owned by the
    sharded backend (tables registered after construction are seen).  The
    router is thread-safe: decisions are pure functions of the query and
    the layout, and the outcome counters take an internal lock.
    """

    def __init__(
        self,
        specs: Mapping[str, PartitionSpec],
        shard_count: int,
        cost_model: Optional[object] = None,
    ):
        self._specs = specs
        self.shard_count = shard_count
        self.cost_model = cost_model
        self._lock = threading.Lock()
        self._rotation = itertools.count()
        self._queries = 0
        self._single = 0
        self._scatter = 0
        self._gather = 0
        self._cost_based = 0
        self._cost_overrides = 0
        self._union_batches = 0
        self._fetches_saved = 0

    def set_cost_model(self, cost_model: Optional[object]) -> None:
        """Attach (or detach, with ``None``) the routing cost model.

        The model prices the modes of one query
        (``scatter_estimate``/``gather_estimate``/``single_shard_estimate``
        of :class:`~repro.cost.model.CostModel`); decisions where only one
        mode is sound are unaffected.
        """
        self.cost_model = cost_model

    def _partitioned_positions(self) -> Dict[str, int]:
        """``table -> partition-key position`` for the cost model's scaling."""
        return {table: spec.position for table, spec in self._specs.items()}

    # ------------------------------------------------------------------
    def route(
        self, query: ConjunctiveQuery, annotate: bool = False
    ) -> RoutingDecision:
        """The execution mode and shard set for one conjunctive query.

        Cost estimates that *decide* (scatter vs gather on co-partitioned
        queries) are always computed; estimates that merely *describe* a
        rule-forced decision (single-shard, forced gather) are skipped on
        the serving hot path and filled in only when *annotate* is set
        (``explain`` sets it).
        """
        decision = self._decide(query, annotate)
        with self._lock:
            self._queries += 1
            if decision.mode == MODE_SINGLE:
                self._single += 1
            elif decision.mode == MODE_SCATTER:
                self._scatter += 1
            else:
                self._gather += 1
            if decision.cost_based:
                self._cost_based += 1
                if decision.mode == MODE_GATHER:
                    self._cost_overrides += 1
        return decision

    def route_plan(self, plan: Query, annotate: bool = False) -> RoutePlan:
        """Routing decisions for a conjunctive query or a whole union.

        Union disjuncts route independently, so a union whose disjuncts all
        bind their partition keys fans out only to the shards actually
        named by the constants.
        """
        disjuncts = plan if isinstance(plan, UnionQuery) else (plan,)
        return RoutePlan(
            decisions=tuple(
                (disjunct, self.route(disjunct, annotate)) for disjunct in disjuncts
            )
        )

    def note_union_batch(self, fetches_saved: int) -> None:
        """Record that a gather-only union shared one fragment fetch pass.

        Called by the sharded backend's batched union execution; the saved
        count is the per-disjunct fetch total minus the fetches the shared
        pass actually performed.
        """
        with self._lock:
            self._union_batches += 1
            self._fetches_saved += max(0, fetches_saved)

    def stats(self) -> RouterStats:
        with self._lock:
            return RouterStats(
                queries=self._queries,
                single_shard=self._single,
                scatter=self._scatter,
                gather=self._gather,
                cost_based=self._cost_based,
                cost_overrides=self._cost_overrides,
                gather_unions_batched=self._union_batches,
                fragment_fetches_saved=self._fetches_saved,
            )

    # ------------------------------------------------------------------
    def _decide(
        self, query: ConjunctiveQuery, annotate: bool = False
    ) -> RoutingDecision:
        normalized = query.normalize_equalities()
        keyed: List[Tuple[PartitionSpec, Term]] = []
        for atom in normalized.relational_body:
            spec = self._specs.get(atom.relation)
            if spec is not None:
                keyed.append((spec, atom.terms[spec.position]))
        if not keyed:
            shard = next(self._rotation) % self.shard_count
            return RoutingDecision(
                mode=MODE_SINGLE,
                shards=(shard,),
                fetch_shards=(),
                reason="only broadcast tables; any shard answers",
            )
        if all(isinstance(term, Constant) for _spec, term in keyed):
            targets = {
                spec.partitioner.shard_of(term.value, self.shard_count)
                for spec, term in keyed
            }
            if len(targets) == 1:
                spec, term = keyed[0]
                # Single-shard pruning dominates every alternative (same
                # plan, one engine, no fan-out), so it is never put up for
                # a cost comparison — only annotated with its estimate,
                # and only when the caller asked for annotations.
                return RoutingDecision(
                    mode=MODE_SINGLE,
                    shards=(next(iter(targets)),),
                    fetch_shards=(),
                    reason=(
                        f"partition key bound: {spec.table}.{spec.column} "
                        f"= {term.value!r}"
                    ),
                    estimated_cost=self._single_cost(normalized) if annotate else None,
                )
            # Constants routing to different shards: each atom's rows live
            # wholly on its own shard, so no single shard sees them all.
            return self._gather_decision(
                normalized, "partition keys bound to different shards", annotate
            )
        key_terms = {term for _spec, term in keyed}
        partitioners = [spec.partitioner for spec, _term in keyed]
        co_partitioned = len(key_terms) == 1 and all(
            partitioner.compatible_with(partitioners[0])
            for partitioner in partitioners[1:]
        )
        if co_partitioned:
            term = next(iter(key_terms))
            reason = (
                f"co-partitioned on {term}"
                if len(keyed) > 1
                else "one partitioned table, key unbound"
            )
            if self.cost_model is None:
                return RoutingDecision(
                    mode=MODE_SCATTER,
                    shards=tuple(range(self.shard_count)),
                    fetch_shards=(),
                    reason=reason,
                )
            return self._choose_scatter_or_gather(normalized, reason)
        return self._gather_decision(
            normalized, "partitioned atoms keyed on different terms", annotate
        )

    # -- cost comparison ------------------------------------------------
    def _single_cost(self, normalized: ConjunctiveQuery) -> Optional[float]:
        if self.cost_model is None:
            return None
        estimate = self.cost_model.single_shard_estimate(
            normalized, self.shard_count, self._partitioned_positions()
        )
        return estimate.total

    def _choose_scatter_or_gather(
        self, normalized: ConjunctiveQuery, reason: str
    ) -> RoutingDecision:
        """Both modes are sound for a co-partitioned query: price them.

        Scatter pays every broadcast scan once per shard; gather pays a
        per-row transfer of the partitioned fragments plus one coordinator
        evaluation.  The cheaper estimate wins; the loser's figure is kept
        on the decision so ``explain`` can show why.
        """
        partitioned = self._partitioned_positions()
        scatter = self.cost_model.scatter_estimate(
            normalized, self.shard_count, partitioned
        )
        # The gather estimate decides here, so it is always computed.
        gather_plan = self._gather_decision(normalized, reason, annotate=True)
        gather_total = gather_plan.estimated_cost
        if gather_total is not None and gather_total < scatter.total:
            return RoutingDecision(
                mode=MODE_GATHER,
                shards=(),
                fetch_shards=gather_plan.fetch_shards,
                reason=f"{reason}; gather modeled cheaper than scatter",
                estimated_cost=gather_total,
                alternative_mode=MODE_SCATTER,
                alternative_cost=scatter.total,
                cost_based=True,
            )
        return RoutingDecision(
            mode=MODE_SCATTER,
            shards=tuple(range(self.shard_count)),
            fetch_shards=(),
            reason=f"{reason}; scatter modeled cheaper than gather",
            estimated_cost=scatter.total,
            alternative_mode=MODE_GATHER,
            alternative_cost=gather_total,
            cost_based=True,
        )

    def _gather_decision(
        self, normalized: ConjunctiveQuery, reason: str, annotate: bool = False
    ) -> RoutingDecision:
        """Coordinator execution, fetching only the shard fragments needed."""
        # Broadcast tables are complete on every shard, so one copy is
        # enough — rotate which shard serves it (the same load-spreading
        # as broadcast-only single-shard routing; always fetching from
        # shard 0 would make its connection pool a gather hotspot).
        broadcast_shard = next(self._rotation) % self.shard_count
        fetch: List[Tuple[str, Tuple[int, ...]]] = []
        for table in sorted(normalized.relation_names()):
            spec = self._specs.get(table)
            if spec is None:
                fetch.append((table, (broadcast_shard,)))
                continue
            shard_sets: List[Optional[Set[int]]] = []
            for atom in normalized.relational_body:
                if atom.relation != table:
                    continue
                term = atom.terms[spec.position]
                if isinstance(term, Constant):
                    shard_sets.append(
                        {spec.partitioner.shard_of(term.value, self.shard_count)}
                    )
                else:
                    shard_sets.append(None)
            if any(shard_set is None for shard_set in shard_sets):
                shards: Tuple[int, ...] = tuple(range(self.shard_count))
            else:
                union: Set[int] = set()
                for shard_set in shard_sets:
                    union.update(shard_set or ())
                shards = tuple(sorted(union))
            fetch.append((table, shards))
        estimated_cost = None
        if annotate and self.cost_model is not None:
            estimated_cost = self.cost_model.gather_estimate(
                normalized,
                tuple(fetch),
                self.shard_count,
                self._partitioned_positions(),
            ).total
        return RoutingDecision(
            mode=MODE_GATHER,
            shards=(),
            fetch_shards=tuple(fetch),
            reason=reason,
            estimated_cost=estimated_cost,
        )
