"""Shard routing: decide which shards a reformulation must touch.

Every horizontal-partitioning system needs an argument for why executing a
query per shard and merging is *correct*; the router encodes that argument
as three execution modes, picked per conjunctive query (per disjunct of a
union — each disjunct routes independently):

``single``
    The whole query runs on one shard.  Sound in two cases: (a) the query
    mentions only broadcast tables, which are complete on every shard (any
    shard answers; the router round-robins to spread load); (b) every
    partitioned atom binds its partition key to a constant and all those
    constants route to the same shard — rows matching the atoms exist
    nowhere else, so no other shard can contribute.  Case (b) is the
    *shard-pruning fast path*: no fan-out, one engine round trip.

``scatter``
    The query runs unchanged on every shard and the per-shard answers are
    merged (concatenation under bag semantics, de-duplication under set
    semantics).  Sound when all partitioned atoms carry the *same term* at
    their key position with mutually compatible partitioners: any
    satisfying assignment gives that term one value, all matching
    partitioned rows live on that value's shard, and broadcast tables are
    complete everywhere — so each answer is produced by exactly one shard
    (co-partitioned join).  A single partitioned atom is the degenerate
    co-partitioned case.

``gather``
    The fallback for arbitrary cross-shard joins (partitioned atoms keyed
    on different terms): shard fragments of the referenced tables are
    pulled to a coordinator-local scratch store and the query is evaluated
    there.  Always correct; the router still prunes the *fetch* — an atom
    that binds its key to a constant only needs that constant's shard, and
    broadcast tables are fetched from a single shard.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..logical.queries import ConjunctiveQuery, UnionQuery
from ..logical.terms import Constant, Term
from .partitioner import PartitionSpec

Query = Union[ConjunctiveQuery, UnionQuery]

MODE_SINGLE = "single"
MODE_SCATTER = "scatter"
MODE_GATHER = "gather"


@dataclass(frozen=True)
class RoutingDecision:
    """How one conjunctive query executes across the shard set."""

    mode: str
    #: Shards the query itself runs on (``single``/``scatter``); empty for
    #: ``gather``, whose work is described by :attr:`fetch_shards`.
    shards: Tuple[int, ...]
    #: ``gather`` only: ``(table, shards-to-fetch-the-fragment-from)`` pairs.
    fetch_shards: Tuple[Tuple[str, Tuple[int, ...]], ...]
    reason: str

    @property
    def needed_shards(self) -> Tuple[int, ...]:
        """Every shard this decision touches (execution or fragment fetch)."""
        if self.mode != MODE_GATHER:
            return self.shards
        touched: Set[int] = set()
        for _table, shards in self.fetch_shards:
            touched.update(shards)
        return tuple(sorted(touched))


@dataclass(frozen=True)
class RoutePlan:
    """The routing decisions for a whole plan (one per disjunct)."""

    decisions: Tuple[Tuple[ConjunctiveQuery, RoutingDecision], ...]

    @property
    def needed_shards(self) -> Tuple[int, ...]:
        touched: Set[int] = set()
        for _query, decision in self.decisions:
            touched.update(decision.needed_shards)
        return tuple(sorted(touched))

    def describe(self) -> str:
        lines = []
        for query, decision in self.decisions:
            target = (
                f"shards {list(decision.shards)}"
                if decision.mode != MODE_GATHER
                else "coordinator (fetch "
                + ", ".join(
                    f"{table}<-{list(shards)}" for table, shards in decision.fetch_shards
                )
                + ")"
            )
            lines.append(f"{query.name}: {decision.mode} -> {target} [{decision.reason}]")
        return "\n".join(lines)


@dataclass(frozen=True)
class RouterStats:
    """Counters of routing outcomes since the router was created."""

    queries: int
    single_shard: int
    scatter: int
    gather: int


class ShardRouter:
    """Prunes the shard set of queries over a fixed partitioning layout.

    *specs* is the live ``table -> PartitionSpec`` mapping owned by the
    sharded backend (tables registered after construction are seen).  The
    router is thread-safe: decisions are pure functions of the query and
    the layout, and the outcome counters take an internal lock.
    """

    def __init__(self, specs: Mapping[str, PartitionSpec], shard_count: int):
        self._specs = specs
        self.shard_count = shard_count
        self._lock = threading.Lock()
        self._rotation = itertools.count()
        self._queries = 0
        self._single = 0
        self._scatter = 0
        self._gather = 0

    # ------------------------------------------------------------------
    def route(self, query: ConjunctiveQuery) -> RoutingDecision:
        """The execution mode and shard set for one conjunctive query."""
        decision = self._decide(query)
        with self._lock:
            self._queries += 1
            if decision.mode == MODE_SINGLE:
                self._single += 1
            elif decision.mode == MODE_SCATTER:
                self._scatter += 1
            else:
                self._gather += 1
        return decision

    def route_plan(self, plan: Query) -> RoutePlan:
        """Routing decisions for a conjunctive query or a whole union.

        Union disjuncts route independently, so a union whose disjuncts all
        bind their partition keys fans out only to the shards actually
        named by the constants.
        """
        disjuncts = plan if isinstance(plan, UnionQuery) else (plan,)
        return RoutePlan(
            decisions=tuple((disjunct, self.route(disjunct)) for disjunct in disjuncts)
        )

    def stats(self) -> RouterStats:
        with self._lock:
            return RouterStats(
                queries=self._queries,
                single_shard=self._single,
                scatter=self._scatter,
                gather=self._gather,
            )

    # ------------------------------------------------------------------
    def _decide(self, query: ConjunctiveQuery) -> RoutingDecision:
        normalized = query.normalize_equalities()
        keyed: List[Tuple[PartitionSpec, Term]] = []
        for atom in normalized.relational_body:
            spec = self._specs.get(atom.relation)
            if spec is not None:
                keyed.append((spec, atom.terms[spec.position]))
        if not keyed:
            shard = next(self._rotation) % self.shard_count
            return RoutingDecision(
                mode=MODE_SINGLE,
                shards=(shard,),
                fetch_shards=(),
                reason="only broadcast tables; any shard answers",
            )
        if all(isinstance(term, Constant) for _spec, term in keyed):
            targets = {
                spec.partitioner.shard_of(term.value, self.shard_count)
                for spec, term in keyed
            }
            if len(targets) == 1:
                spec, term = keyed[0]
                return RoutingDecision(
                    mode=MODE_SINGLE,
                    shards=(next(iter(targets)),),
                    fetch_shards=(),
                    reason=(
                        f"partition key bound: {spec.table}.{spec.column} "
                        f"= {term.value!r}"
                    ),
                )
            # Constants routing to different shards: each atom's rows live
            # wholly on its own shard, so no single shard sees them all.
            return self._gather_decision(
                normalized, "partition keys bound to different shards"
            )
        key_terms = {term for _spec, term in keyed}
        partitioners = [spec.partitioner for spec, _term in keyed]
        co_partitioned = len(key_terms) == 1 and all(
            partitioner.compatible_with(partitioners[0])
            for partitioner in partitioners[1:]
        )
        if co_partitioned:
            term = next(iter(key_terms))
            return RoutingDecision(
                mode=MODE_SCATTER,
                shards=tuple(range(self.shard_count)),
                fetch_shards=(),
                reason=(
                    f"co-partitioned on {term}"
                    if len(keyed) > 1
                    else "one partitioned table, key unbound"
                ),
            )
        return self._gather_decision(
            normalized, "partitioned atoms keyed on different terms"
        )

    def _gather_decision(
        self, normalized: ConjunctiveQuery, reason: str
    ) -> RoutingDecision:
        """Coordinator execution, fetching only the shard fragments needed."""
        # Broadcast tables are complete on every shard, so one copy is
        # enough — rotate which shard serves it (the same load-spreading
        # as broadcast-only single-shard routing; always fetching from
        # shard 0 would make its connection pool a gather hotspot).
        broadcast_shard = next(self._rotation) % self.shard_count
        fetch: List[Tuple[str, Tuple[int, ...]]] = []
        for table in sorted(normalized.relation_names()):
            spec = self._specs.get(table)
            if spec is None:
                fetch.append((table, (broadcast_shard,)))
                continue
            shard_sets: List[Optional[Set[int]]] = []
            for atom in normalized.relational_body:
                if atom.relation != table:
                    continue
                term = atom.terms[spec.position]
                if isinstance(term, Constant):
                    shard_sets.append(
                        {spec.partitioner.shard_of(term.value, self.shard_count)}
                    )
                else:
                    shard_sets.append(None)
            if any(shard_set is None for shard_set in shard_sets):
                shards: Tuple[int, ...] = tuple(range(self.shard_count))
            else:
                union: Set[int] = set()
                for shard_set in shard_sets:
                    union.update(shard_set or ())
                shards = tuple(sorted(union))
            fetch.append((table, shards))
        return RoutingDecision(
            mode=MODE_GATHER, shards=(), fetch_shards=tuple(fetch), reason=reason
        )
