"""Checkout/checkin pooling of storage-backend connections.

A :class:`ConnectionPool` wraps one fully-built *template* backend (the one
a :class:`~repro.core.executor.MarsExecutor` loaded with the proprietary
tables) and hands out up to ``size`` clones of it, one per concurrent
client.  All clones are created eagerly, in the constructing thread,
through :meth:`~repro.storage.backends.StorageBackend.clone` — cloning may
need to *read* the template (SQLite's backup API), and the template
connection keeps its thread affinity, so clone creation must not happen
lazily on whichever serving thread first runs dry.  The clones themselves
are thread-portable:

* ``memory`` clones are independent snapshots of the tables;
* ``sqlite`` clones are fresh connections — a second connection to the same
  file, or a backup-API snapshot for ``:memory:`` databases — created with
  ``check_same_thread=False`` so a connection built by one thread can later
  be checked out by another.

Snapshot clones would go stale the moment the template accepts a write,
so a pool built with a :class:`~repro.replica.changeset.MutationLog`
tracks the LSN each clone has applied and **replays the log tail onto the
clone at checkout and checkin** — updating the service no longer means
rebuilding the pool, and a checkout never observes data older than the
log head (the read-your-writes barrier ``publish`` relies on).  Backends
whose clones share storage with the template (an on-disk SQLite file,
``clone_is_snapshot == False``) skip replay: their writes are visible
directly.

The pool never hands the same connection to two threads at once, so no
backend-internal locking is needed.  Admission control bounds the wait
queue: at most ``max_waiters`` threads (default ``2 * size``) may park for
a connection, and the next acquire fails fast with
:class:`PoolExhaustedError` carrying the :class:`PoolStats` snapshot taken
at rejection time.  Closing a pool with connections still checked out
fails loudly; ``close(force=True)`` is the emergency teardown and closes
the checked-out clones too (abandoned engine handles must not leak).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional

from ..errors import StorageError
from ..obs.events import EventLog, POOL_CLONE_REPLACED
from ..obs.trace import current_span
from ..replica.changeset import MutationLog
from ..storage.backends import StorageBackend


@dataclass(frozen=True)
class PoolStats:
    """A snapshot of pool activity, taken under the pool lock."""

    size: int
    created: int
    in_use: int
    checkouts: int
    peak_in_use: int
    wait_count: int
    #: Threads currently parked in the wait queue.
    waiting: int = 0
    #: Acquires rejected because the wait queue was already full.
    rejections: int = 0
    #: Checkouts/checkins that replayed a mutation-log tail onto a clone.
    catchups: int = 0
    #: Total log entries replayed across those catch-ups.
    entries_replayed: int = 0
    #: Clones that fell below the log's compaction floor and were rebuilt
    #: from the template instead of failing the checkout.
    stale_rebuilds: int = 0
    #: Identifies the pool in per-shard breakdowns (e.g. ``"shard-2"``).
    label: str = ""


class PoolExhaustedError(StorageError):
    """Raised when an acquire is rejected or times out; carries the stats.

    :attr:`stats` is the :class:`PoolStats` snapshot taken at rejection
    time, so admission-control callers can report *why* the pool was full
    (in-use count, queue depth) without a second call racing the state.
    """

    def __init__(self, message: str, stats: PoolStats):
        super().__init__(f"{message} [{stats}]")
        self.stats = stats


class ConnectionPool:
    """Bounded checkout/checkin pool of backend clones.

    The *template* backend stays owned by the caller (typically the
    executor that built it); the pool owns only the clones it creates and
    closes them in :meth:`close`.

    Admission control: at most *max_waiters* threads may queue for a
    connection (default ``2 * size``).  An acquire arriving on a full
    queue fails immediately with :class:`PoolExhaustedError` instead of
    piling up behind a timeout — under overload, shedding the excess
    request at once beats making every client wait out the deadline.
    """

    def __init__(
        self,
        template: StorageBackend,
        size: int = 4,
        max_waiters: Optional[int] = None,
        label: str = "",
        mutation_log: Optional[MutationLog] = None,
        events: Optional[EventLog] = None,
    ):
        if size < 1:
            raise StorageError(f"connection pool needs size >= 1, got {size}")
        if max_waiters is None:
            max_waiters = 2 * size
        if max_waiters < 0:
            raise StorageError(f"max_waiters must be >= 0, got {max_waiters}")
        self.template = template
        self.size = size
        self.max_waiters = max_waiters
        self.label = label
        # With a mutation log attached, snapshot clones replay its tail at
        # checkout/checkin; clones that share storage with the template
        # (clone_is_snapshot False) see committed writes directly.  A
        # template mixing both kinds of children could do neither — its
        # snapshot clones would go stale without replay, while its shared
        # clones would double-apply with it — so it is rejected up front.
        if mutation_log is not None and getattr(
            template, "has_mixed_snapshot_children", False
        ):
            raise StorageError(
                "cannot attach a mutation log: the template backend mixes "
                "snapshot-cloning and shared-storage children (e.g. a "
                "file-backed SQLite child among memory children); use a "
                "uniform child layout for live updates"
            )
        self.mutation_log = mutation_log
        #: Optional structured event log clone replacements are recorded to.
        self.events = events
        self._replay = mutation_log is not None and template.clone_is_snapshot
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._all: List[StorageBackend] = []
        clone_lsns: List[int] = []
        try:
            for _ in range(size):
                # Stamp each clone with the log LSN observed immediately
                # *before* its clone() call.  A single post-loop read would
                # stamp every clone with the final head — so a write landing
                # while the loop runs (after clone i, before the read) would
                # be marked applied on clone i without ever reaching it: a
                # silently stale connection.  The pre-clone stamp errs the
                # other way — a write racing the clone itself may be
                # replayed onto a clone that already holds it — which is
                # bounded to that one in-flight write and, unlike the lost
                # update, never invents a connection that lies about its
                # LSN.
                clone_lsns.append(
                    mutation_log.lsn if mutation_log is not None else 0
                )
                self._all.append(template.clone())
        except Exception:
            # Don't leak the clones that did come up when a later one fails.
            for backend in self._all:
                if not backend.closed:
                    backend.close()
            raise
        self._clone_lsn: Dict[int, int] = {
            id(backend): lsn for backend, lsn in zip(self._all, clone_lsns)
        }
        self._idle: Deque[StorageBackend] = deque(self._all)
        self._in_use = 0
        self._checkouts = 0
        self._peak_in_use = 0
        self._wait_count = 0
        self._waiting = 0
        self._rejections = 0
        self._catchups = 0
        self._entries_replayed = 0
        self._stale_rebuilds = 0
        self._closed = False

    # ------------------------------------------------------------------
    def acquire(
        self, timeout: Optional[float] = None, min_lsn: Optional[int] = None
    ) -> StorageBackend:
        """Check a connection out, queueing briefly while the pool is busy.

        With a mutation log attached, the clone is caught up to the log
        head before it is handed out, so the caller never reads data older
        than the last committed write; *min_lsn* makes that read-your-
        writes barrier explicit — the call fails with
        :class:`StorageError` if the synced clone is still behind it
        (which indicates a bug, not load).

        Raises :class:`StorageError` when the pool is closed, and
        :class:`PoolExhaustedError` — with the :class:`PoolStats` snapshot
        attached — when the bounded wait queue is already full
        (*max_waiters* threads parked) or when *timeout* seconds elapse
        without a connection becoming free.  The timeout is a deadline for
        the whole call: being woken up and losing the idle connection to
        another thread does not restart the clock.
        """
        span = current_span().child("pool.acquire", pool=self.label or "pool")
        with span:
            backend = self._acquire(timeout, min_lsn)
            if self._replay:
                span.annotate(lsn=self.connection_lsn(backend))
            return backend

    def _acquire(
        self, timeout: Optional[float], min_lsn: Optional[int]
    ) -> StorageBackend:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._available:
            waited = False
            try:
                while True:
                    if self._closed:
                        raise StorageError("cannot acquire from a closed pool")
                    if self._idle:
                        backend = self._idle.pop()
                        break
                    if not waited:
                        if self._waiting >= self.max_waiters:
                            self._rejections += 1
                            raise PoolExhaustedError(
                                f"connection pool exhausted: {self._in_use} "
                                f"connection(s) in use and {self._waiting} "
                                f"waiter(s) already queued "
                                f"(max_waiters={self.max_waiters})",
                                self._stats_locked(),
                            )
                        waited = True
                        self._wait_count += 1
                        self._waiting += 1
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise PoolExhaustedError(
                                f"timed out after {timeout}s waiting for a "
                                f"pooled connection (size={self.size})",
                                self._stats_locked(),
                            )
                    self._available.wait(timeout=remaining)
            finally:
                if waited:
                    self._waiting -= 1
            self._in_use += 1
            self._checkouts += 1
            self._peak_in_use = max(self._peak_in_use, self._in_use)
        # Catch-up replay runs outside the pool lock: only this thread
        # holds the clone, and other checkouts must not wait behind it.
        # _sync may hand back a different (rebuilt) connection when this
        # one fell below the log's compaction floor.
        try:
            backend = self._sync(backend)
            if min_lsn is not None and self._replay:
                applied = self._clone_lsn.get(id(backend), 0)
                if applied < min_lsn:
                    raise StorageError(
                        f"read-your-writes barrier violated: connection at "
                        f"LSN {applied}, needed {min_lsn}"
                    )
        except Exception:
            self._discard(backend)
            raise
        return backend

    def _sync(self, backend: StorageBackend) -> StorageBackend:
        """Replay the mutation-log tail this clone has not applied yet.

        Returns the connection to hand out — usually *backend* itself, but
        a clone whose applied LSN fell below the log's compaction floor
        (compaction outran it while it sat checked out or idle) can no
        longer catch up incrementally; instead of failing the checkout
        forever, it is rebuilt from the template (:meth:`_rebuild_stale`)
        and the fresh clone is returned.
        """
        if not self._replay:
            return backend
        log = self.mutation_log
        # Two attempts: the floor can advance between the staleness check
        # and the tail read (another checkin compacting concurrently); one
        # rebuild re-stamps at the then-current head, the retry reads the
        # tail from there.  A second failure is a real fault and raises.
        for attempt in (0, 1):
            applied = self._clone_lsn.get(id(backend), 0)
            if applied < log.floor:
                backend = self._rebuild_stale(backend)
                applied = self._clone_lsn.get(id(backend), 0)
            head = log.lsn
            if applied >= head:
                return backend
            try:
                entries = log.entries_since(applied)
            except StorageError:
                if attempt == 0:
                    continue
                raise
            break
        with current_span().child(
            "pool.catchup", pool=self.label or "pool", from_lsn=applied
        ) as span:
            for entry in entries:
                backend.apply(entry.changeset)
                applied = entry.lsn
            span.annotate(entries=len(entries), to_lsn=applied)
        with self._lock:
            self._clone_lsn[id(backend)] = applied
            self._catchups += 1
            self._entries_replayed += len(entries)
        return backend

    def _rebuild_stale(self, backend: StorageBackend) -> StorageBackend:
        """Replace a below-the-floor clone with a fresh template clone.

        The caller holds *backend* checked out, so swapping it for a new
        clone is private to this thread: the replacement inherits the
        checkout (``in_use`` is untouched) and the stale clone is closed.
        The same pre-clone LSN stamping as pool construction applies.
        """
        lsn = self.mutation_log.lsn
        replacement = self.template.clone()
        with self._lock:
            self._clone_lsn.pop(id(backend), None)
            if backend in self._all:
                self._all.remove(backend)
            self._all.append(replacement)
            self._clone_lsn[id(replacement)] = lsn
            self._stale_rebuilds += 1
        if not backend.closed:
            backend.close()
        if self.events is not None:
            self.events.record(
                POOL_CLONE_REPLACED,
                pool=self.label or "pool",
                replaced=True,
                reason="stale",
                remaining=len(self._all),
            )
        return replacement

    def _discard(self, backend: StorageBackend) -> None:
        """Drop a clone whose state is no longer trustworthy (failed replay).

        A replacement is cloned from the template (which always holds the
        log head, so the fresh clone starts fully caught up).  If the
        template cannot be cloned either and the last connection is gone,
        the pool closes itself so subsequent acquires fail loudly instead
        of parking until timeout on a pool that can never serve them.
        """
        replacement: Optional[StorageBackend] = None
        replacement_lsn = 0
        try:
            # Pre-clone stamping, as in the constructor: reading the head
            # after the clone would mark writes that landed mid-clone as
            # applied when the clone may have missed them.
            if self.mutation_log is not None:
                replacement_lsn = self.mutation_log.lsn
            replacement = self.template.clone()
        except Exception:
            replacement = None
        adopted = False
        with self._available:
            self._in_use -= 1
            self._clone_lsn.pop(id(backend), None)
            if backend in self._all:
                self._all.remove(backend)
            if replacement is not None and not self._closed:
                self._all.append(replacement)
                self._clone_lsn[id(replacement)] = replacement_lsn
                self._idle.append(replacement)
                adopted = True
            elif not self._all and not self._closed:
                self._closed = True
            self._available.notify()
            remaining = len(self._all)
        if replacement is not None and not adopted and not replacement.closed:
            replacement.close()
        if not backend.closed:
            backend.close()
        if self.events is not None:
            self.events.record(
                POOL_CLONE_REPLACED,
                pool=self.label or "pool",
                replaced=adopted,
                remaining=remaining,
            )

    def connection_lsn(self, backend: StorageBackend) -> int:
        """The mutation-log LSN a checked-out connection has applied."""
        with self._lock:
            return self._clone_lsn.get(id(backend), 0)

    def release(self, backend: StorageBackend) -> None:
        """Return a checked-out connection to the pool.

        With a mutation log attached, the clone is caught up on checkin
        too (cheap when nothing was written), which both amortizes replay
        work off the checkout path and lets the log compact entries every
        clone has consumed.
        """
        if self._replay and not self._closed and not backend.closed:
            try:
                backend = self._sync(backend)
            except Exception:
                self._discard(backend)
                raise
        with self._available:
            self._in_use -= 1
            if self._closed:
                if not backend.closed:
                    backend.close()
                return
            self._idle.append(backend)
            self._available.notify()
        if self._replay:
            with self._lock:
                floor = min(self._clone_lsn.values(), default=0)
            self.mutation_log.compact(floor)

    @contextmanager
    def connection(
        self, timeout: Optional[float] = None, min_lsn: Optional[int] = None
    ) -> Iterator[StorageBackend]:
        """``with pool.connection() as backend: ...`` checkout/checkin."""
        backend = self.acquire(timeout=timeout, min_lsn=min_lsn)
        try:
            yield backend
        finally:
            self.release(backend)

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def _stats_locked(self) -> PoolStats:
        return PoolStats(
            size=self.size,
            created=len(self._all),
            in_use=self._in_use,
            checkouts=self._checkouts,
            peak_in_use=self._peak_in_use,
            wait_count=self._wait_count,
            waiting=self._waiting,
            rejections=self._rejections,
            catchups=self._catchups,
            entries_replayed=self._entries_replayed,
            stale_rebuilds=self._stale_rebuilds,
            label=self.label,
        )

    def stats(self) -> PoolStats:
        with self._lock:
            return self._stats_locked()

    def close(self, force: bool = False) -> None:
        """Close every pooled clone.

        Closing while connections are still checked out is a bug in the
        caller's shutdown ordering and fails loudly with
        :class:`StorageError` (nothing is closed); pass ``force=True`` for
        emergency teardown, which closes the checked-out clones too —
        abandoned checkouts must not leak engine handles (SQLite
        connections), and a racing holder finds its connection dead
        rather than the process finding a leak.  Idempotent once it
        succeeds (unlike backend ``close``): a service shutting down must
        be able to run its teardown twice.  The template backend is not
        touched.
        """
        with self._available:
            if self._closed:
                return
            if self._in_use and not force:
                raise StorageError(
                    f"cannot close pool: {self._in_use} connection(s) still "
                    "checked out (release them first, or close(force=True) "
                    f"to abandon them) [{self._stats_locked()}]"
                )
            self._closed = True
            # Forced teardown sweeps every clone ever created, including
            # the checked-out ones; the clean path closes only the idle
            # set (in_use == 0 implies they are the same).  Closing under
            # the pool lock keeps a racing release() from double-closing.
            doomed = list(self._all) if force else list(self._idle)
            self._idle.clear()
            self._available.notify_all()
            for backend in doomed:
                if not backend.closed:
                    backend.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
