"""Checkout/checkin pooling of storage-backend connections.

A :class:`ConnectionPool` wraps one fully-built *template* backend (the one
a :class:`~repro.core.executor.MarsExecutor` loaded with the proprietary
tables) and hands out up to ``size`` clones of it, one per concurrent
client.  All clones are created eagerly, in the constructing thread,
through :meth:`~repro.storage.backends.StorageBackend.clone` — cloning may
need to *read* the template (SQLite's backup API), and the template
connection keeps its thread affinity, so clone creation must not happen
lazily on whichever serving thread first runs dry.  The clones themselves
are thread-portable:

* ``memory`` clones share the underlying tables (reads of Python lists are
  thread-safe);
* ``sqlite`` clones are fresh connections — a second connection to the same
  file, or a backup-API snapshot for ``:memory:`` databases — created with
  ``check_same_thread=False`` so a connection built by one thread can later
  be checked out by another.

The pool never hands the same connection to two threads at once, so no
backend-internal locking is needed.  Admission control bounds the wait
queue: at most ``max_waiters`` threads (default ``2 * size``) may park for
a connection, and the next acquire fails fast with
:class:`PoolExhaustedError` carrying the :class:`PoolStats` snapshot taken
at rejection time.  Closing a pool with connections still checked out
fails loudly; ``close(force=True)`` is the emergency teardown.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional

from ..errors import StorageError
from ..storage.backends import StorageBackend


@dataclass(frozen=True)
class PoolStats:
    """A snapshot of pool activity, taken under the pool lock."""

    size: int
    created: int
    in_use: int
    checkouts: int
    peak_in_use: int
    wait_count: int
    #: Threads currently parked in the wait queue.
    waiting: int = 0
    #: Acquires rejected because the wait queue was already full.
    rejections: int = 0
    #: Identifies the pool in per-shard breakdowns (e.g. ``"shard-2"``).
    label: str = ""


class PoolExhaustedError(StorageError):
    """Raised when an acquire is rejected or times out; carries the stats.

    :attr:`stats` is the :class:`PoolStats` snapshot taken at rejection
    time, so admission-control callers can report *why* the pool was full
    (in-use count, queue depth) without a second call racing the state.
    """

    def __init__(self, message: str, stats: PoolStats):
        super().__init__(f"{message} [{stats}]")
        self.stats = stats


class ConnectionPool:
    """Bounded checkout/checkin pool of backend clones.

    The *template* backend stays owned by the caller (typically the
    executor that built it); the pool owns only the clones it creates and
    closes them in :meth:`close`.

    Admission control: at most *max_waiters* threads may queue for a
    connection (default ``2 * size``).  An acquire arriving on a full
    queue fails immediately with :class:`PoolExhaustedError` instead of
    piling up behind a timeout — under overload, shedding the excess
    request at once beats making every client wait out the deadline.
    """

    def __init__(
        self,
        template: StorageBackend,
        size: int = 4,
        max_waiters: Optional[int] = None,
        label: str = "",
    ):
        if size < 1:
            raise StorageError(f"connection pool needs size >= 1, got {size}")
        if max_waiters is None:
            max_waiters = 2 * size
        if max_waiters < 0:
            raise StorageError(f"max_waiters must be >= 0, got {max_waiters}")
        self.template = template
        self.size = size
        self.max_waiters = max_waiters
        self.label = label
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._all: List[StorageBackend] = []
        try:
            for _ in range(size):
                self._all.append(template.clone())
        except Exception:
            # Don't leak the clones that did come up when a later one fails.
            for backend in self._all:
                if not backend.closed:
                    backend.close()
            raise
        self._idle: Deque[StorageBackend] = deque(self._all)
        self._in_use = 0
        self._checkouts = 0
        self._peak_in_use = 0
        self._wait_count = 0
        self._waiting = 0
        self._rejections = 0
        self._closed = False

    # ------------------------------------------------------------------
    def acquire(self, timeout: Optional[float] = None) -> StorageBackend:
        """Check a connection out, queueing briefly while the pool is busy.

        Raises :class:`StorageError` when the pool is closed, and
        :class:`PoolExhaustedError` — with the :class:`PoolStats` snapshot
        attached — when the bounded wait queue is already full
        (*max_waiters* threads parked) or when *timeout* seconds elapse
        without a connection becoming free.  The timeout is a deadline for
        the whole call: being woken up and losing the idle connection to
        another thread does not restart the clock.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._available:
            waited = False
            try:
                while True:
                    if self._closed:
                        raise StorageError("cannot acquire from a closed pool")
                    if self._idle:
                        backend = self._idle.pop()
                        break
                    if not waited:
                        if self._waiting >= self.max_waiters:
                            self._rejections += 1
                            raise PoolExhaustedError(
                                f"connection pool exhausted: {self._in_use} "
                                f"connection(s) in use and {self._waiting} "
                                f"waiter(s) already queued "
                                f"(max_waiters={self.max_waiters})",
                                self._stats_locked(),
                            )
                        waited = True
                        self._wait_count += 1
                        self._waiting += 1
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise PoolExhaustedError(
                                f"timed out after {timeout}s waiting for a "
                                f"pooled connection (size={self.size})",
                                self._stats_locked(),
                            )
                    self._available.wait(timeout=remaining)
            finally:
                if waited:
                    self._waiting -= 1
            self._in_use += 1
            self._checkouts += 1
            self._peak_in_use = max(self._peak_in_use, self._in_use)
            return backend

    def release(self, backend: StorageBackend) -> None:
        """Return a checked-out connection to the pool."""
        with self._available:
            self._in_use -= 1
            if self._closed:
                if not backend.closed:
                    backend.close()
                return
            self._idle.append(backend)
            self._available.notify()

    @contextmanager
    def connection(self, timeout: Optional[float] = None) -> Iterator[StorageBackend]:
        """``with pool.connection() as backend: ...`` checkout/checkin."""
        backend = self.acquire(timeout=timeout)
        try:
            yield backend
        finally:
            self.release(backend)

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def _stats_locked(self) -> PoolStats:
        return PoolStats(
            size=self.size,
            created=len(self._all),
            in_use=self._in_use,
            checkouts=self._checkouts,
            peak_in_use=self._peak_in_use,
            wait_count=self._wait_count,
            waiting=self._waiting,
            rejections=self._rejections,
            label=self.label,
        )

    def stats(self) -> PoolStats:
        with self._lock:
            return self._stats_locked()

    def close(self, force: bool = False) -> None:
        """Close every pooled clone.

        Closing while connections are still checked out is a bug in the
        caller's shutdown ordering and fails loudly with
        :class:`StorageError` (nothing is closed); pass ``force=True`` for
        emergency teardown, in which case in-flight checkouts are closed
        when they come back.  Idempotent once it succeeds (unlike backend
        ``close``): a service shutting down must be able to run its
        teardown twice.  The template backend is not touched.
        """
        with self._available:
            if self._closed:
                return
            if self._in_use and not force:
                raise StorageError(
                    f"cannot close pool: {self._in_use} connection(s) still "
                    "checked out (release them first, or close(force=True) "
                    f"to abandon them) [{self._stats_locked()}]"
                )
            self._closed = True
            idle = list(self._idle)
            self._idle.clear()
            self._available.notify_all()
        for backend in idle:
            if not backend.closed:
                backend.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
