"""A thread-safe LRU cache for reformulation plans.

Reformulating one client query runs the full Chase & Backchase — orders of
magnitude more expensive than executing the resulting plan on small
instances.  A publishing site serves the *same* queries over and over
(every page render poses the same XBind query with fresh variable names),
so :class:`PlanCache` memoizes the finished
:class:`~repro.core.reformulation.MarsReformulation` — including its cost
estimate and candidate ranking — keyed on the configuration *version*, the
query's structural :meth:`~repro.xbind.query.XBindQuery.fingerprint` and
the effective minimize mode.  A cache hit skips the C&B engine entirely;
a configuration edit bumps the version, and ``MarsSystem`` flushes the
stale entries through :meth:`PlanCache.evict_where` (as does attaching
fresh statistics — a plan chosen under old numbers may no longer be best).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters, snapshotted under the cache lock."""

    maxsize: int
    current_size: int
    hits: int
    misses: int
    evictions: int
    #: Entries dropped by :meth:`PlanCache.evict_where` (cache
    #: invalidation after a configuration edit), distinct from LRU
    #: capacity evictions.
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """Bounded LRU mapping of plan keys to cached reformulations.

    The cache is value-agnostic (any object can be stored), so the system
    can cache whole :class:`MarsReformulation` results and tests can cache
    sentinels.  ``None`` is not a legal value — it is the miss marker.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError(f"plan cache needs maxsize >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value for *key*, refreshed as most recently used."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store *value* under *key*, evicting the least recently used entry."""
        if value is None:
            raise ValueError("PlanCache cannot store None (the miss marker)")
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def evict_where(self, predicate) -> int:
        """Drop every entry whose *key* satisfies *predicate*; return the count.

        This is the invalidation hook: ``MarsSystem`` calls it with a
        version test after a configuration edit, so plans computed under
        superseded views/constraints stop occupying LRU slots.  The
        predicate sees keys only (values may be arbitrarily large).
        """
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self._invalidations += len(doomed)
            return len(doomed)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                maxsize=self.maxsize,
                current_size=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
            )

    def clear(self) -> None:
        """Drop every entry (counters are kept; they describe the lifetime)."""
        with self._lock:
            self._entries.clear()

    def keys(self) -> Tuple[Hashable, ...]:
        with self._lock:
            return tuple(self._entries)
