"""The thread-safe publishing service: MARS behind a ``publish()`` call.

This is the piece that turns the reproduction from a library into a
servable system.  A :class:`PublishingService` owns

* one :class:`~repro.core.system.MarsSystem` (the C&B reformulation
  engine, serialized behind a lock — it is not reentrant) with an attached
  :class:`~repro.serve.cache.PlanCache`, so a repeated client query costs a
  cache lookup instead of a chase;
* one :class:`~repro.core.executor.MarsExecutor` that builds the
  proprietary instance data into a *template* backend exactly once;
* one :class:`~repro.serve.pool.ConnectionPool` of backend clones, so many
  threads can execute plans concurrently without sharing a SQLite
  connection across threads.

``publish(query)`` does cache-aware reformulation, checks a connection out
of the pool, runs the plan (optionally the whole union of minimal
reformulations as a single ``UNION`` round trip) and returns the rows.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.configuration import MarsConfiguration
from ..core.executor import MarsExecutor
from ..core.reformulation import MarsReformulation
from ..core.system import MarsSystem
from ..errors import ReformulationError, StorageError
from ..logical.queries import ConjunctiveQuery, UnionQuery
from ..xbind.query import XBindQuery
from .cache import CacheStats, PlanCache
from .pool import ConnectionPool, PoolStats

Row = Tuple[object, ...]

#: Execute only the cost-ranked best reformulation.
STRATEGY_BEST = "best"
#: Execute the union of every minimal reformulation in one round trip.
STRATEGY_UNION = "union"


@dataclass(frozen=True)
class ServiceStats:
    """One snapshot of service, plan-cache and pool counters."""

    queries_served: int
    reformulations_computed: int
    cache: CacheStats
    pool: PoolStats


class PublishingService:
    """Serve XBind queries concurrently from pooled proprietary storage.

    Parameters default from the configuration (``backend``, ``pool_size``,
    ``plan_cache_size``); pass *system* to reuse an already-built
    :class:`MarsSystem` (its plan cache is adopted, or one is attached).
    The service is safe to share between threads; close it (or use it as a
    context manager) to release the pool and the template backend.
    """

    def __init__(
        self,
        configuration: MarsConfiguration,
        backend: Optional[object] = None,
        pool_size: Optional[int] = None,
        cache_size: Optional[int] = None,
        plan_cache: Optional[PlanCache] = None,
        system: Optional[MarsSystem] = None,
        strategy: str = STRATEGY_BEST,
        checkout_timeout: Optional[float] = 30.0,
    ):
        if strategy not in (STRATEGY_BEST, STRATEGY_UNION):
            raise ValueError(f"unknown execution strategy {strategy!r}")
        self.configuration = configuration
        self.strategy = strategy
        self.checkout_timeout = checkout_timeout
        if system is None:
            system = MarsSystem(configuration)
        if system.plan_cache is None:
            if plan_cache is None:
                size = (
                    cache_size
                    if cache_size is not None
                    else configuration.plan_cache_size
                )
                plan_cache = PlanCache(maxsize=size)
            system.plan_cache = plan_cache
        self.system = system
        self.plan_cache: PlanCache = system.plan_cache
        # Build the instance data once, into the template backend the pool
        # will clone from.
        self.executor = MarsExecutor(configuration, backend=backend)
        size = pool_size if pool_size is not None else configuration.pool_size
        try:
            self.pool = ConnectionPool(self.executor.backend, size=size)
        except Exception:
            # Don't leak the template connection when pooling fails (bad
            # size, unclonable backend).
            self.executor.close()
            raise
        # The C&B engine mutates per-call state deep inside the chase; it is
        # correct but not reentrant, so reformulation is serialized.  Plan
        # execution — the per-request hot path — runs fully in parallel.
        self._reformulate_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._queries_served = 0
        self._reformulations_computed = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Reformulation (cache-aware, serialized)
    # ------------------------------------------------------------------
    def reformulate(self, query: XBindQuery) -> MarsReformulation:
        """The (possibly cached) reformulation the service would execute."""
        cache = self.plan_cache
        with self._reformulate_lock:
            # Read the miss counter on both sides of the call while still
            # holding the lock: read outside it, another thread's concurrent
            # miss would be misattributed to this call.
            before = cache.misses
            reformulation = self.system.reformulate(query)
            missed = cache.misses != before
        if missed:
            with self._counter_lock:
                self._reformulations_computed += 1
        return reformulation

    def warm(self, queries: Sequence[XBindQuery]) -> int:
        """Pre-populate the plan cache; returns how many plans were computed."""
        before = self._reformulations_computed
        for query in queries:
            self.reformulate(query)
        return self._reformulations_computed - before

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _check_strategy(self, strategy: Optional[str], distinct: bool) -> str:
        effective = strategy or self.strategy
        if effective not in (STRATEGY_BEST, STRATEGY_UNION):
            raise ValueError(f"unknown execution strategy {effective!r}")
        if effective == STRATEGY_UNION and not distinct:
            raise ValueError(
                "the union strategy executes all minimal reformulations, "
                "which only agree under set semantics; distinct=False is "
                "limited to the best-plan strategy"
            )
        return effective

    def plan_for(
        self, reformulation: MarsReformulation, strategy: Optional[str] = None
    ):
        """The executable plan for *reformulation* under *strategy*."""
        if not reformulation.found:
            raise ReformulationError(
                f"no reformulation of {reformulation.query.name} against the "
                "proprietary schema exists"
            )
        strategy = strategy or self.strategy
        if strategy not in (STRATEGY_BEST, STRATEGY_UNION):
            raise ValueError(f"unknown execution strategy {strategy!r}")
        if strategy == STRATEGY_UNION and len(reformulation.minimal) > 1:
            return UnionQuery(
                f"{reformulation.query.name}_union", reformulation.minimal
            )
        return reformulation.best

    def publish(
        self,
        query: XBindQuery,
        distinct: bool = True,
        strategy: Optional[str] = None,
    ) -> List[Row]:
        """Reformulate (or hit the plan cache) and execute *query*; return rows."""
        if self._closed:
            raise StorageError("PublishingService is closed")
        effective = self._check_strategy(strategy, distinct)
        plan = self.plan_for(self.reformulate(query), strategy=effective)
        with self.pool.connection(timeout=self.checkout_timeout) as backend:
            if isinstance(plan, UnionQuery):
                rows = backend.execute_union(plan, distinct=True)
            else:
                rows = backend.execute(plan, distinct=distinct)
        with self._counter_lock:
            self._queries_served += 1
        return rows

    def publish_many(
        self,
        queries: Sequence[XBindQuery],
        distinct: bool = True,
        strategy: Optional[str] = None,
    ) -> List[List[Row]]:
        """Serve a batch of queries on this thread, reusing one connection.

        The same rules as :meth:`publish` apply to the whole batch.
        """
        if self._closed:
            raise StorageError("PublishingService is closed")
        effective = self._check_strategy(strategy, distinct)
        plans = [
            self.plan_for(self.reformulate(query), strategy=effective)
            for query in queries
        ]
        results: List[List[Row]] = []
        with self.pool.connection(timeout=self.checkout_timeout) as backend:
            for plan in plans:
                if isinstance(plan, UnionQuery):
                    results.append(backend.execute_union(plan, distinct=True))
                else:
                    results.append(backend.execute(plan, distinct=distinct))
        with self._counter_lock:
            self._queries_served += len(queries)
        return results

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        with self._counter_lock:
            served = self._queries_served
            computed = self._reformulations_computed
        return ServiceStats(
            queries_served=served,
            reformulations_computed=computed,
            cache=self.plan_cache.stats(),
            pool=self.pool.stats(),
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the pool and the template backend; idempotent."""
        if self._closed:
            return
        self._closed = True
        self.pool.close()
        self.executor.close()

    def __enter__(self) -> "PublishingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
