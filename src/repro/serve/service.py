"""The thread-safe publishing service: MARS behind a ``publish()`` call.

This is the piece that turns the reproduction from a library into a
servable system.  A :class:`PublishingService` owns

* one :class:`~repro.core.system.MarsSystem` (the C&B reformulation
  engine, serialized behind a lock — it is not reentrant) with an attached
  :class:`~repro.serve.cache.PlanCache`, so a repeated client query costs a
  cache lookup instead of a chase;
* one :class:`~repro.core.executor.MarsExecutor` that builds the
  proprietary instance data into a *template* backend exactly once;
* one :class:`~repro.serve.pool.ConnectionPool` of backend clones, so many
  threads can execute plans concurrently without sharing a SQLite
  connection across threads.

``publish(query)`` does cache-aware reformulation, checks a connection out
of the pool, runs the plan (optionally the whole union of minimal
reformulations as a single ``UNION`` round trip) and returns the rows.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.configuration import MarsConfiguration
from ..core.executor import MarsExecutor
from ..core.reformulation import MarsReformulation
from ..core.system import MarsSystem
from ..errors import ReformulationError, StorageError
from ..logical.queries import ConjunctiveQuery, UnionQuery
from ..plan import PlanStore, PlanStoreStats
from ..profile import ProfileBuffer, ProfileNode, QueryProfile
from ..obs import (
    AdminServer,
    AuditLog,
    AuditStats,
    CheckResult,
    CostFeedback,
    DEGRADED,
    EventLog,
    FingerprintFeedback,
    HEALTHY,
    HealthCheck,
    HealthReport,
    LOG_CHECKPOINT,
    LOG_RECOVERED,
    MetricsRegistry,
    NULL_TRACE,
    REPLICA_FAILOVER,
    REPLICA_FENCED,
    SLOW_QUERY,
    SLOReport,
    SLOTracker,
    STATISTICS_REFRESH,
    TraceBuffer,
    Tracer,
    UNHEALTHY,
    current_span,
    phase_breakdown,
    timer,
)
from ..replica import (
    ChangeSet,
    DurableMutationLog,
    MutationLog,
    RebalanceReport,
    Rebalancer,
    RepairLoop,
    RepairReport,
    ReplicaRepairer,
    ReplicatedBackend,
    ReplicaStats,
    restore_snapshot,
)
from ..shard import RouterStats, ShardedBackend
from ..storage.backends import StorageBackend
from ..xbind.query import XBindQuery
from .cache import CacheStats, PlanCache
from .pool import ConnectionPool, PoolStats

Row = Tuple[object, ...]

#: Execute only the cost-ranked best reformulation.
STRATEGY_BEST = "best"
#: Execute the union of every minimal reformulation in one round trip.
STRATEGY_UNION = "union"


class _PublishGate:
    """A readers/writer gate: publishes and updates run concurrently
    (readers), the rebalance cutover runs alone (writer).

    Writer-preferring: once a cutover is waiting, new reader entries park
    behind it, so a steady publish stream cannot starve the swap.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._turnstile = threading.Condition(self._lock)
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._turnstile:
            while self._writer or self._writers_waiting:
                self._turnstile.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._turnstile:
                self._readers -= 1
                if not self._readers:
                    self._turnstile.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._turnstile:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._turnstile.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._turnstile:
                self._writer = False
                self._turnstile.notify_all()


@dataclass(frozen=True)
class ServiceStats:
    """One snapshot of service, plan-cache and pool counters.

    On a sharded deployment :attr:`pool` is the aggregate across shards,
    :attr:`shard_pools` breaks it down per shard (labelled ``shard-i``) and
    :attr:`router` reports the routing outcomes (how many queries were
    pruned to a single shard, scattered, or gathered).  The aggregate's
    ``peak_in_use`` sums per-shard peaks that may have occurred at
    different moments — it is an upper bound on the true concurrent peak,
    not an observation of one; size pools from the per-shard numbers.
    """

    queries_served: int
    reformulations_computed: int
    cache: CacheStats
    pool: PoolStats
    shard_pools: Tuple[PoolStats, ...] = ()
    router: Optional[RouterStats] = None
    #: Change sets applied through :meth:`PublishingService.update`.
    updates_applied: int = 0
    #: Highest mutation-log LSN a completed update reached.
    last_write_lsn: int = 0
    #: Statistics re-collections triggered by row-count drift.
    statistics_refreshes: int = 0
    #: Completed online rebalances (shard splits/merges).
    rebalances: int = 0
    #: Replica counters of the template backend on a replicated
    #: deployment (``None`` elsewhere).
    replicas: Optional[ReplicaStats] = None
    #: Lifetime read failovers across the template *and* every pooled
    #: clone (counted through the service event log).
    replica_failovers: int = 0
    #: Lifetime replica fences across the template and pooled clones.
    replica_fenced: int = 0
    #: Dead replicas re-provisioned back to live copies
    #: (:meth:`PublishingService.repair_replicas`).
    replica_repairs: int = 0
    #: Events the event log dropped because recording them failed.
    events_dropped: int = 0
    #: Durable mutation-log segment files on disk, summed over the
    #: service's logs (0 on in-memory deployments).
    log_segments: int = 0
    #: Durable mutation-log bytes on disk.
    log_size_bytes: int = 0
    #: When the service came up (ISO-8601, UTC).
    started_at: str = ""
    #: Seconds since the service came up (monotonic).
    uptime_seconds: float = 0.0
    #: The serving package's version string.
    version: str = ""
    #: Per-query SLO standings (empty when SLO tracking is off).
    slo: Tuple[SLOReport, ...] = ()
    #: Audit-log shape (``None`` when the audit log is off).
    audit: Optional[AuditStats] = None
    #: Reformulations served by decoding a plan-store artifact (no C&B
    #: engine entry).
    plans_loaded: int = 0
    #: Plan-store counters (``None`` when no store is attached).
    plan_store: Optional[PlanStoreStats] = None

    def snapshot(self) -> Dict[str, object]:
        """The stats as one JSON-able dict (the operator-facing view).

        Surfaces the numbers operators act on directly, including the
        router's ``cost_overrides`` (cost-based decisions that overturned
        the rule-based routing default) and the replica failover/fence
        counts.
        """
        data: Dict[str, object] = {
            "started_at": self.started_at,
            "uptime_seconds": self.uptime_seconds,
            "version": self.version,
            "queries_served": self.queries_served,
            "reformulations_computed": self.reformulations_computed,
            "plans_loaded": self.plans_loaded,
            "updates_applied": self.updates_applied,
            "last_write_lsn": self.last_write_lsn,
            "statistics_refreshes": self.statistics_refreshes,
            "rebalances": self.rebalances,
            "replica_failovers": self.replica_failovers,
            "replica_fenced": self.replica_fenced,
            "replica_repairs": self.replica_repairs,
            "events_dropped": self.events_dropped,
            "log_segments": self.log_segments,
            "log_size_bytes": self.log_size_bytes,
            "cache": {
                "entries": self.cache.current_size,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": self.cache.hit_rate,
                "evictions": self.cache.evictions,
                "invalidations": self.cache.invalidations,
            },
            "pool": {
                "size": self.pool.size,
                "in_use": self.pool.in_use,
                "checkouts": self.pool.checkouts,
                "peak_in_use": self.pool.peak_in_use,
                "rejections": self.pool.rejections,
                "catchups": self.pool.catchups,
                "stale_rebuilds": self.pool.stale_rebuilds,
            },
        }
        if self.router is not None:
            data["router"] = {
                "queries": self.router.queries,
                "single_shard": self.router.single_shard,
                "scatter": self.router.scatter,
                "gather": self.router.gather,
                "cost_based": self.router.cost_based,
                "cost_overrides": self.router.cost_overrides,
            }
        if self.replicas is not None:
            data["replicas"] = {
                "replica_count": self.replicas.replica_count,
                "live_replicas": self.replicas.live_replicas,
                "failovers": self.replicas.failovers,
                "fenced": self.replicas.fenced,
                "repaired": self.replicas.repaired,
                "selector": self.replicas.selector,
            }
        if self.slo:
            data["slo"] = [entry.to_dict() for entry in self.slo]
        if self.audit is not None:
            data["audit"] = self.audit.to_dict()
        if self.plan_store is not None:
            data["plan_store"] = self.plan_store.to_dict()
        return data


class PublishingService:
    """Serve XBind queries concurrently from pooled proprietary storage.

    Parameters default from the configuration (``backend``, ``pool_size``,
    ``plan_cache_size``); pass *system* to reuse an already-built
    :class:`MarsSystem` (its plan cache is adopted, or one is attached).
    The service is safe to share between threads; close it (or use it as a
    context manager) to release the pool and the template backend.
    """

    def __init__(
        self,
        configuration: MarsConfiguration,
        backend: Optional[object] = None,
        pool_size: Optional[int] = None,
        cache_size: Optional[int] = None,
        plan_cache: Optional[PlanCache] = None,
        system: Optional[MarsSystem] = None,
        strategy: str = STRATEGY_BEST,
        checkout_timeout: Optional[float] = 30.0,
        max_waiters: Optional[int] = None,
        refresh_statistics: bool = True,
        drift_threshold: Optional[float] = 0.2,
        tracing: bool = True,
        slow_query_seconds: Optional[float] = None,
        slow_query_sample: int = 1,
        metrics_registry: Optional[MetricsRegistry] = None,
        event_log_size: int = 1024,
        log_dir: Optional[str] = None,
        plan_dir: Optional[str] = None,
        log_fsync: Optional[str] = None,
        log_segment_bytes: Optional[int] = None,
        auto_repair_interval: Optional[float] = None,
        admin_port: Optional[int] = None,
        admin_host: str = "127.0.0.1",
        audit_dir: Optional[str] = None,
        audit_fsync: Optional[str] = None,
        audit_max_bytes: Optional[int] = None,
        slo_target_p99: Optional[float] = None,
        slo_window_seconds: Optional[float] = None,
        trace_buffer_size: int = 64,
        trace_sample: int = 1,
        profile_sample: int = 0,
        profile_buffer_size: int = 64,
    ):
        if strategy not in (STRATEGY_BEST, STRATEGY_UNION):
            raise ValueError(f"unknown execution strategy {strategy!r}")
        if slow_query_sample < 1:
            raise ValueError(
                f"slow_query_sample must be >= 1, got {slow_query_sample}"
            )
        if profile_sample < 0:
            raise ValueError(
                f"profile_sample must be >= 0 (0 disables profiling), "
                f"got {profile_sample}"
            )
        self.configuration = configuration
        self.strategy = strategy
        self.checkout_timeout = checkout_timeout
        self.drift_threshold = drift_threshold
        # Observability: the tracer hands each publish/update a span tree
        # (the null trace when disabled), the registry is the common
        # metrics substrate, the event log records state transitions
        # stamped with the current write LSN, and the cost-feedback
        # recorder closes the estimate-vs-actual loop.
        self.tracer = Tracer(enabled=tracing)
        self.registry = (
            metrics_registry if metrics_registry is not None else MetricsRegistry()
        )
        self.events = EventLog(
            maxlen=event_log_size, lsn_source=lambda: self._write_lsn
        )
        self.cost_feedback = CostFeedback()
        #: A sampled ring of completed span trees, served on /traces/recent.
        self.trace_buffer = TraceBuffer(
            maxlen=trace_buffer_size, sample=trace_sample
        )
        #: Per-operator query profiles: with ``profile_sample`` = N > 0,
        #: one publish in N executes with a structured profile attached
        #: and lands in this ring (served on /profiles/recent and
        #: /profiles/worst).  0 disables sampling — ``explain(analyze=
        #: True)`` still profiles its one forced publish.
        self.profile_buffer: Optional[ProfileBuffer] = (
            ProfileBuffer(maxlen=profile_buffer_size, sample=profile_sample)
            if profile_sample > 0
            else None
        )
        #: The :class:`QueryProfile` of the most recent profiled publish.
        self.last_profile: Optional[QueryProfile] = None
        self._started_clock = timer()
        self.started_at = datetime.now(timezone.utc).isoformat()
        # Per-query latency objectives: a seconds budget (here or on the
        # configuration) turns error-budget tracking on.
        slo_target = (
            slo_target_p99
            if slo_target_p99 is not None
            else configuration.slo_target_p99
        )
        slo_window = (
            slo_window_seconds
            if slo_window_seconds is not None
            else configuration.slo_window_seconds
        )
        self.slo: Optional[SLOTracker] = (
            SLOTracker(slo_target, window_seconds=slo_window)
            if slo_target is not None
            else None
        )
        #: Named health probes rolled up on /health; built-in checks are
        #: registered once storage exists (see _init_health), callers may
        #: register their own.
        self.health_checks = HealthCheck()
        self._health_pool_rejections = 0
        self._health_pool_stale_rebuilds = 0
        #: Publishes at or over this many seconds enter the slow-query
        #: log (``None`` disables it); of those, every *slow_query_sample*-th
        #: is recorded (1 records them all).
        self.slow_query_seconds = slow_query_seconds
        self.slow_query_sample = slow_query_sample
        self._slow_candidates = 0
        #: The span tree of the most recent traced publish/update.
        self.last_trace = NULL_TRACE
        self._write_lsn = 0
        # The template backend must be usable from whichever thread calls
        # update() or rebalance(), so backends the service builds itself
        # are created thread-portable (an injected instance is trusted to
        # be whatever the caller needs, and stays the caller's to close).
        self._template_owned = backend is None or isinstance(backend, (str, type))
        if self._template_owned:
            try:
                backend = configuration.create_backend(
                    backend, check_same_thread=False
                )
            except TypeError:
                backend = configuration.create_backend(backend)
        if system is None:
            system = MarsSystem(configuration)
        if system.plan_cache is None:
            if plan_cache is None:
                size = (
                    cache_size
                    if cache_size is not None
                    else configuration.plan_cache_size
                )
                plan_cache = PlanCache(maxsize=size)
            system.plan_cache = plan_cache
        self.system = system
        self.plan_cache: PlanCache = system.plan_cache
        # Persistent plan artifacts: with a plan directory configured (the
        # parameter, the configuration's plan_dir, or MARS_PLAN_DIR), a
        # disk-backed store is attached to the system — compiled plans
        # become durable artifacts and a restarted service serves them
        # without re-entering the C&B engine.  A store the caller already
        # attached to the system is adopted; either way its load outcomes
        # are recorded on this service's event log.
        plan_path = plan_dir if plan_dir is not None else configuration.plan_dir
        if system.plan_store is None and plan_path is not None:
            system.plan_store = PlanStore(plan_path)
        self.plan_store: Optional[PlanStore] = system.plan_store
        if self.plan_store is not None and self.plan_store.events is None:
            self.plan_store.events = self.events
        # Build the instance data once, into the template backend the pools
        # will clone from.
        self.executor = MarsExecutor(configuration, backend=backend)
        # The write path: one mutation log per pool (per shard on a
        # sharded deployment), replayed onto pooled snapshot clones at
        # checkout/checkin instead of rebuilding the service after writes.
        # With a log directory configured the logs are durable: they spool
        # to append-only segment files, and updates acknowledged by a
        # previous incarnation of this service are recovered into the
        # freshly built template *before* statistics are measured or any
        # clone is taken.
        self.mutation_log: Optional[MutationLog] = None
        self.shard_logs: Tuple[MutationLog, ...] = ()
        self._log_dir = log_dir if log_dir is not None else configuration.log_dir
        self._log_fsync = (
            log_fsync if log_fsync is not None else configuration.log_fsync
        )
        self._log_segment_bytes = (
            log_segment_bytes
            if log_segment_bytes is not None
            else configuration.log_segment_bytes
        )
        self._durable = self._log_dir is not None
        self._log_recovered_entries = 0
        if self._durable:
            try:
                self._open_durable_logs()
            except Exception:
                self._close_logs()
                self._close_template()
                raise
        # Plan against measured statistics, not declarations: the built
        # backend is profiled once (the executor has already fed a sharded
        # router its cost model) and the system ranks reformulations with
        # the same numbers.  Skipped when the caller owns plan ranking
        # (refresh_statistics=False, or a system with an injected
        # estimator).
        if refresh_statistics and system.cost_model is not None:
            try:
                # A sharded backend was profiled moments ago, during the
                # executor build; reuse that catalog instead of re-running
                # the whole ANALYZE/COUNT(DISTINCT) sweep on every child —
                # unless log recovery just replayed rows the profile never
                # saw, in which case the sweep must run again.
                catalog = None
                if not self._log_recovered_entries:
                    catalog = getattr(
                        self.executor.backend, "statistics_catalog", None
                    )
                if catalog is None:
                    catalog = self.executor.collect_statistics()
                system.attach_statistics(catalog)
            except Exception:
                self._close_logs()
                self._close_template()
                raise
        size = pool_size if pool_size is not None else configuration.pool_size
        # Sharded deployments get one pool *per shard*: a partition-key
        # bound query then occupies a connection on exactly one shard,
        # instead of pinning a full set of per-shard clones per request.
        self.pool: Optional[ConnectionPool] = None
        self.shard_pools: Tuple[ConnectionPool, ...] = ()
        self._pool_size = size
        self._max_waiters = max_waiters
        template = self.executor.backend
        try:
            if isinstance(template, ShardedBackend):
                self.shard_pools, self.shard_logs = self._build_shard_pools(
                    template, logs=self.shard_logs or None
                )
            else:
                if self.mutation_log is None:
                    self.mutation_log = MutationLog()
                self.pool = ConnectionPool(
                    template,
                    size=size,
                    max_waiters=max_waiters,
                    mutation_log=self.mutation_log,
                    events=self.events,
                )
        except Exception:
            # Don't leak the template connection (or the durable log
            # handles) when pooling fails (bad size, unclonable backend).
            self._close_logs()
            self._close_template()
            raise
        # The C&B engine mutates per-call state deep inside the chase; it is
        # correct but not reentrant, so reformulation is serialized.  Plan
        # execution — the per-request hot path — runs fully in parallel.
        self._reformulate_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._queries_served = 0
        self._reformulations_computed = 0
        self._plans_loaded = 0
        # Write-path state: updates serialize behind one lock; publishes
        # and updates pass the gate as readers, the rebalance cutover as
        # the exclusive writer.
        self._write_lock = threading.Lock()
        self._gate = _PublishGate()
        self._rebalance_lock = threading.Lock()
        self._rebalance_log: Optional[MutationLog] = None
        self._updates_applied = 0
        self._statistics_refreshes = 0
        self._rebalances = 0
        self._replica_repairs = 0
        # Row-count drift accounting for the adaptive statistics trigger:
        # rows touched per relation since the last collection, compared
        # against the row counts that collection measured.
        self._drift_rows: Dict[str, float] = {}
        self._stats_rows: Dict[str, float] = {}
        self._reset_drift_baseline()
        self._wire_event_log(self.executor.backend)
        self._init_metrics()
        self._closed = False
        # The failure detector: with an interval set, a daemon thread runs
        # repair_replicas() periodically, so a fenced/killed replica heals
        # back to K copies without an operator.
        self._repair_loop: Optional[RepairLoop] = None
        if auto_repair_interval is not None:
            self._repair_loop = RepairLoop(
                self._auto_repair_tick, interval=auto_repair_interval
            )
            self._repair_loop.start()
        # The operational tier comes up last, once everything it reports
        # on exists: the built-in health probes, the durable audit log of
        # acknowledged requests, and the admin HTTP endpoint.  A failure
        # here (unwritable audit directory, admin port in use) tears the
        # fully built service back down instead of leaking it.
        self.audit: Optional[AuditLog] = None
        self.admin: Optional[AdminServer] = None
        self._init_health()
        try:
            audit_path = (
                audit_dir if audit_dir is not None else configuration.audit_dir
            )
            if audit_path is not None:
                self.audit = AuditLog(
                    audit_path,
                    max_bytes=(
                        audit_max_bytes
                        if audit_max_bytes is not None
                        else configuration.audit_max_bytes
                    ),
                    fsync=(
                        audit_fsync
                        if audit_fsync is not None
                        else configuration.audit_fsync
                    ),
                )
            port = (
                admin_port if admin_port is not None else configuration.admin_port
            )
            if port is not None:
                self.admin = AdminServer(
                    port,
                    host=admin_host,
                    metrics_text=self.registry.render_prometheus,
                    stats_snapshot=lambda: self.stats().snapshot(),
                    health_report=self.health,
                    ready=lambda: not self._closed,
                    event_tail=self._event_tail,
                    trace_recent=self._trace_recent,
                    profiles_recent=(
                        self._profiles_recent
                        if self.profile_buffer is not None
                        else None
                    ),
                    profiles_worst=(
                        self._profiles_worst
                        if self.profile_buffer is not None
                        else None
                    ),
                )
                self.admin.start()
        except Exception:
            self.close(force=True)
            raise

    # ------------------------------------------------------------------
    # Durable mutation logs
    # ------------------------------------------------------------------
    def _open_durable_logs(self) -> None:
        """Open (and recover from) the segment logs under ``log_dir``.

        Layout: a single-pool deployment logs under ``<log_dir>/service``,
        a sharded one under ``<log_dir>/shard-<i>``.  A directory written
        by a different layout (other shard count, other topology) is
        rejected up front — replaying its entries through today's routing
        would scatter rows to the wrong fragments.
        """
        template = self.executor.backend
        if not template.clone_is_snapshot:
            raise StorageError(
                "a durable log directory requires snapshot-cloning engines "
                "(the template is rebuilt from the configuration at startup "
                "and recovered by replay; an engine persisting its own "
                "state, e.g. file-backed SQLite, would double-apply)"
            )
        base = Path(self._log_dir)
        base.mkdir(parents=True, exist_ok=True)
        if isinstance(template, ShardedBackend):
            expected = [f"shard-{i}" for i in range(template.shard_count)]
        else:
            expected = ["service"]
        existing = sorted(
            entry.name for entry in base.iterdir() if entry.is_dir()
        )
        if existing and existing != sorted(expected):
            raise StorageError(
                f"log directory {base} was written by a different deployment "
                f"layout: found {existing}, this deployment needs "
                f"{sorted(expected)}"
            )
        opened: List[DurableMutationLog] = []
        try:
            for name in expected:
                log = DurableMutationLog(
                    base / name,
                    fsync=self._log_fsync,
                    segment_max_bytes=self._log_segment_bytes,
                )
                opened.append(log)
        except Exception:
            for log in opened:
                log.close()
            raise
        if isinstance(template, ShardedBackend):
            self.shard_logs = tuple(opened)
            for index, (log, child) in enumerate(
                zip(opened, template.children)
            ):
                self._recover_log(log, child, label=f"shard-{index}")
            # Per-shard logs advance independently (an update only touches
            # the shards it routes to), so the service-level write LSN
            # restarts at the furthest shard head: monotonic, though not
            # necessarily dense across the restart.
            self._write_lsn = max((log.lsn for log in opened), default=0)
        else:
            self.mutation_log = opened[0]
            self._recover_log(opened[0], template, label="service")
            self._write_lsn = opened[0].lsn

    def _recover_log(
        self, log: DurableMutationLog, backend: StorageBackend, label: str
    ) -> None:
        """Bring *backend* up to *log*'s head: snapshot restore + replay."""
        start = 0
        snapshot = log.load_checkpoint()
        if snapshot is not None:
            checkpoint_lsn, tables = snapshot
            restore_snapshot(backend, tables)
            start = checkpoint_lsn
        entries = log.entries_since(start)
        for entry in entries:
            backend.apply(entry.changeset)
        self._log_recovered_entries += len(entries)
        if snapshot is not None or entries or log.truncated_records:
            self.events.record(
                LOG_RECOVERED,
                lsn=log.lsn,
                log=label,
                checkpoint_lsn=log.checkpoint_lsn,
                entries=len(entries),
                truncated_records=log.truncated_records,
            )

    def _durable_logs(self) -> Tuple[DurableMutationLog, ...]:
        """The service's durable logs (empty on in-memory deployments)."""
        logs: List[DurableMutationLog] = []
        for log in (self.mutation_log, *self.shard_logs):
            if isinstance(log, DurableMutationLog):
                logs.append(log)
        return tuple(logs)

    def _close_logs(self) -> None:
        for log in (self.mutation_log, *self.shard_logs):
            if log is not None:
                log.close()

    def _wire_event_log(self, backend: object) -> None:
        """Point every replicated layer at the service's event log.

        Fencing and failover happen deep inside backends (including the
        pooled clones, which inherit the log through ``clone()``), so the
        log is installed recursively over the template's children.
        """
        setter = getattr(backend, "set_event_log", None)
        if setter is not None:
            setter(self.events)
        for child in getattr(backend, "children", ()) or ():
            self._wire_event_log(child)
        for replica in getattr(backend, "replicas", ()) or ():
            self._wire_event_log(replica)

    def _init_metrics(self) -> None:
        """Register the service's metric families (idempotent per registry)."""
        registry = self.registry
        self._m_publishes = registry.counter(
            "mars_publishes_total", "publish() calls served"
        )
        self._m_publish_errors = registry.counter(
            "mars_publish_errors_total", "publish() calls that raised"
        )
        self._m_published_rows = registry.counter(
            "mars_published_rows_total", "rows returned by publish()"
        )
        self._m_publish_latency = registry.histogram(
            "mars_publish_latency_seconds", "publish() wall-clock seconds"
        )
        self._m_updates = registry.counter(
            "mars_updates_total", "change sets applied through update()"
        )
        self._m_update_latency = registry.histogram(
            "mars_update_latency_seconds", "update() wall-clock seconds"
        )
        self._m_reformulations = registry.counter(
            "mars_reformulations_total",
            "C&B reformulations computed (plan-cache misses)",
        )
        self._m_plans_loaded = registry.counter(
            "mars_plans_loaded_total",
            "reformulations served by decoding a plan-store artifact",
        )
        self._m_slow = registry.counter(
            "mars_slow_queries_total",
            "publishes at or over the slow-query threshold",
        )
        self._m_feedback = registry.counter(
            "mars_cost_feedback_samples_total",
            "estimate-vs-actual samples recorded",
        )
        self._m_profiles = registry.counter(
            "mars_profiles_recorded_total",
            "per-operator query profiles retained (sampled or forced)",
        )
        self._m_statistics_refreshes = registry.counter(
            "mars_statistics_refreshes_total",
            "statistics re-collections (drift, misestimation, rebalance)",
        )
        self._m_rebalances = registry.counter(
            "mars_rebalances_total", "completed online rebalances"
        )
        self._m_rebalance_latency = registry.histogram(
            "mars_rebalance_latency_seconds", "rebalance() wall-clock seconds"
        )
        self._m_repairs = registry.counter(
            "mars_replica_repairs_total",
            "dead replicas re-provisioned back to live copies",
        )
        # Export-time gauges bridging the *Stats snapshots (cache, pool,
        # router, replica) into the registry without a second counter on
        # any hot path.
        self._g_cache_entries = registry.gauge(
            "mars_plan_cache_entries", "plans currently cached"
        )
        self._g_cache_hit_ratio = registry.gauge(
            "mars_plan_cache_hit_ratio", "lifetime plan-cache hit rate"
        )
        self._g_plan_store_artifacts = registry.gauge(
            "mars_plan_store_plans", "plan artifacts on disk"
        )
        self._g_plan_store_hits = registry.gauge(
            "mars_plan_store_hits_total", "plan-store loads that hit"
        )
        self._g_plan_store_misses = registry.gauge(
            "mars_plan_store_misses_total", "plan-store loads that missed"
        )
        self._g_plan_store_writes = registry.gauge(
            "mars_plan_store_writes_total", "plan artifacts written"
        )
        self._g_plan_store_corrupt = registry.gauge(
            "mars_plan_store_corrupt_total", "plan artifacts quarantined"
        )
        self._g_plan_store_invalidations = registry.gauge(
            "mars_plan_store_invalidations_total",
            "stale plan artifacts deleted",
        )
        self._g_pool_size = registry.gauge(
            "mars_pool_size_connections", "pooled connections (aggregate)"
        )
        self._g_pool_in_use = registry.gauge(
            "mars_pool_in_use_connections", "connections checked out right now"
        )
        self._g_pool_checkouts = registry.gauge(
            "mars_pool_checkouts_total", "lifetime pool checkouts"
        )
        self._g_pool_catchups = registry.gauge(
            "mars_pool_catchups_total", "checkouts/checkins that replayed a log tail"
        )
        self._g_router_queries = registry.gauge(
            "mars_router_queries_total", "queries the shard router decided"
        )
        self._g_router_cost_overrides = registry.gauge(
            "mars_router_cost_overrides_total",
            "cost-based routing decisions that overturned the rule default",
        )
        self._g_live_replicas = registry.gauge(
            "mars_live_replicas", "replicas still serving on the template"
        )
        self._g_replica_failovers = registry.gauge(
            "mars_replica_failovers_total",
            "read failovers across template and pooled clones",
        )
        self._g_replica_fenced = registry.gauge(
            "mars_replica_fenced_total",
            "replicas fenced across template and pooled clones",
        )
        self._g_write_lsn = registry.gauge(
            "mars_write_lsn", "highest acknowledged mutation-log LSN"
        )
        self._g_log_segments = registry.gauge(
            "mars_log_segments",
            "durable mutation-log segment files on disk (all logs)",
        )
        self._g_log_bytes = registry.gauge(
            "mars_log_size_bytes", "durable mutation-log bytes on disk"
        )
        self._g_events_dropped = registry.gauge(
            "mars_events_dropped_total",
            "events the event log dropped because recording them failed",
        )
        self._g_health = registry.gauge(
            "mars_health_status",
            "aggregate health: 1 healthy, 0.5 degraded, 0 unhealthy",
        )
        self._g_uptime = registry.gauge(
            "mars_uptime_seconds", "seconds since the service came up"
        )
        self._g_profile_buffer = registry.gauge(
            "mars_profile_buffer_entries", "query profiles currently buffered"
        )
        self._g_profile_worst_q = registry.gauge(
            "mars_profile_worst_q_error_ratio",
            "largest per-operator q-error across buffered profiles",
        )
        self._g_audit_records = registry.gauge(
            "mars_audit_records_total", "audit entries written this incarnation"
        )
        self._g_audit_bytes = registry.gauge(
            "mars_audit_size_bytes", "active audit file bytes on disk"
        )
        # Per-query SLO series (labelled); counters move on the publish
        # path, the standing gauges are refreshed at export time.
        self._m_slo_requests = registry.counter(
            "mars_slo_requests_total",
            "publishes measured against the latency objective",
            labels=("query",),
        )
        self._m_slo_violations = registry.counter(
            "mars_slo_violations_total",
            "publishes that missed the latency objective",
            labels=("query",),
        )
        self._g_slo_target = registry.gauge(
            "mars_slo_target_seconds",
            "the per-query latency objective",
            labels=("query",),
        )
        self._g_slo_p99 = registry.gauge(
            "mars_slo_window_p99_seconds",
            "observed p99 over the rolling SLO window",
            labels=("query",),
        )
        self._g_slo_burn = registry.gauge(
            "mars_slo_error_budget_burn_ratio",
            "window violation rate over the allowed rate (>1 is breaching)",
            labels=("query",),
        )

        def collect() -> None:
            if self._closed:
                return
            try:
                stats = self.stats()
            except Exception:
                return
            self._g_cache_entries.set(stats.cache.current_size)
            self._g_cache_hit_ratio.set(stats.cache.hit_rate)
            self._g_pool_size.set(stats.pool.size)
            self._g_pool_in_use.set(stats.pool.in_use)
            self._g_pool_checkouts.set(stats.pool.checkouts)
            self._g_pool_catchups.set(stats.pool.catchups)
            if stats.router is not None:
                self._g_router_queries.set(stats.router.queries)
                self._g_router_cost_overrides.set(stats.router.cost_overrides)
            if stats.replicas is not None:
                self._g_live_replicas.set(stats.replicas.live_replicas)
            self._g_replica_failovers.set(stats.replica_failovers)
            self._g_replica_fenced.set(stats.replica_fenced)
            self._g_write_lsn.set(stats.last_write_lsn)
            self._g_log_segments.set(stats.log_segments)
            self._g_log_bytes.set(stats.log_size_bytes)
            self._g_events_dropped.set(stats.events_dropped)
            self._g_uptime.set(stats.uptime_seconds)
            self._g_health.set(self.health().value)
            if self.profile_buffer is not None:
                self._g_profile_buffer.set(len(self.profile_buffer))
                self._g_profile_worst_q.set(self.profile_buffer.worst_q_error())
            for entry in stats.slo:
                self._g_slo_target.labels(query=entry.key).set(entry.target_p99)
                self._g_slo_p99.labels(query=entry.key).set(entry.window_p99)
                self._g_slo_burn.labels(query=entry.key).set(entry.budget_burn)
            if stats.audit is not None:
                self._g_audit_records.set(stats.audit.records)
                self._g_audit_bytes.set(stats.audit.active_bytes)
            if stats.plan_store is not None:
                self._g_plan_store_artifacts.set(stats.plan_store.artifacts)
                self._g_plan_store_hits.set(stats.plan_store.hits)
                self._g_plan_store_misses.set(stats.plan_store.misses)
                self._g_plan_store_writes.set(stats.plan_store.writes)
                self._g_plan_store_corrupt.set(stats.plan_store.corrupt)
                self._g_plan_store_invalidations.set(
                    stats.plan_store.invalidations
                )

        registry.add_collector(collect)

    # ------------------------------------------------------------------
    # Health probes
    # ------------------------------------------------------------------
    def _init_health(self) -> None:
        """Register the built-in probes (see ``repro.obs.health``).

        The checks read pool/replica/log state directly — never through
        :meth:`stats` — so a probe stays cheap and :meth:`stats` can keep
        reporting while a probe would block.
        """
        checks = self.health_checks
        checks.register("service", self._check_service)
        checks.register("pool", self._check_pool)
        if self._replicated_stores():
            checks.register("replicas", self._check_replicas)
        if self._durable:
            checks.register("durable_log", self._check_durable_log)
        if self._repair_loop is not None:
            checks.register("repair_loop", self._check_repair_loop)

    def _replicated_stores(self) -> List[Tuple[str, ReplicatedBackend]]:
        """Every replicated store the service owns, labelled."""
        template = self.executor.backend
        stores: List[Tuple[str, ReplicatedBackend]] = []
        if isinstance(template, ReplicatedBackend):
            stores.append(("template", template))
        elif isinstance(template, ShardedBackend):
            for index, child in enumerate(template.children):
                if isinstance(child, ReplicatedBackend):
                    stores.append((f"shard-{index}", child))
        return stores

    def _check_service(self) -> CheckResult:
        if self._closed:
            return CheckResult("service", UNHEALTHY, reason="service is closed")
        return CheckResult("service", HEALTHY)

    def _check_pool(self) -> CheckResult:
        pools = ([self.pool] if self.pool is not None else []) + list(
            self.shard_pools
        )
        per = [pool.stats() for pool in pools]
        waiting = sum(stats.waiting for stats in per)
        rejections = sum(stats.rejections for stats in per)
        stale = sum(stats.stale_rebuilds for stats in per)
        with self._counter_lock:
            new_rejections = rejections - self._health_pool_rejections
            new_stale = stale - self._health_pool_stale_rebuilds
            self._health_pool_rejections = rejections
            self._health_pool_stale_rebuilds = stale
        details = {
            "size": sum(stats.size for stats in per),
            "in_use": sum(stats.in_use for stats in per),
            "waiting": waiting,
            "rejections": rejections,
            "stale_rebuilds": stale,
        }
        reasons: List[str] = []
        if waiting:
            reasons.append(f"{waiting} checkout(s) waiting")
        if new_rejections > 0:
            reasons.append(f"{new_rejections} rejection(s) since last probe")
        if new_stale > 0:
            reasons.append(
                f"{new_stale} stale clone rebuild(s) since last probe"
            )
        status = DEGRADED if reasons else HEALTHY
        return CheckResult(
            "pool", status, reason="; ".join(reasons), details=details
        )

    def _check_replicas(self) -> CheckResult:
        status = HEALTHY
        reasons: List[str] = []
        details: Dict[str, object] = {}
        for label, store in self._replicated_stores():
            stats = store.stats()
            details[label] = {
                "replica_count": stats.replica_count,
                "live_replicas": stats.live_replicas,
                "fenced": stats.fenced,
            }
            if stats.live_replicas == 0:
                status = UNHEALTHY
                reasons.append(f"{label}: no live replicas")
            elif stats.live_replicas < stats.replica_count:
                if status == HEALTHY:
                    status = DEGRADED
                reasons.append(
                    f"{label}: {stats.live_replicas}/{stats.replica_count} "
                    "replicas live"
                )
        return CheckResult(
            "replicas", status, reason="; ".join(reasons), details=details
        )

    def _check_durable_log(self) -> CheckResult:
        logs = self._durable_logs()
        status = HEALTHY
        reasons: List[str] = []
        segments = 0
        size_bytes = 0
        for log in logs:
            if log.closed:
                status = UNHEALTHY
                reasons.append(f"log {log.directory} is closed")
                continue
            if not Path(log.directory).is_dir():
                status = UNHEALTHY
                reasons.append(f"log directory {log.directory} is gone")
                continue
            log_stats = log.stats()
            segments += log_stats.segments
            size_bytes += log_stats.size_bytes
        details = {
            "logs": len(logs),
            "segments": segments,
            "size_bytes": size_bytes,
        }
        return CheckResult(
            "durable_log", status, reason="; ".join(reasons), details=details
        )

    def _check_repair_loop(self) -> CheckResult:
        loop = self._repair_loop
        if loop is None:
            return CheckResult("repair_loop", HEALTHY, reason="not configured")
        details = {"ticks": loop.ticks, "errors": loop.errors}
        if not loop.running and not self._closed:
            return CheckResult(
                "repair_loop",
                UNHEALTHY,
                reason="repair loop configured but not running",
                details=details,
            )
        if loop.errors:
            return CheckResult(
                "repair_loop",
                DEGRADED,
                reason=f"{loop.errors} repair tick(s) raised",
                details=details,
            )
        return CheckResult("repair_loop", HEALTHY, details=details)

    def health(self) -> HealthReport:
        """Run every registered probe; the worst status wins."""
        return self.health_checks.report()

    # ------------------------------------------------------------------
    # Admin endpoint providers
    # ------------------------------------------------------------------
    @property
    def admin_port(self) -> Optional[int]:
        """The admin endpoint's bound port (``None`` when disabled)."""
        return self.admin.port if self.admin is not None else None

    def _event_tail(self, kind: Optional[str], n: int) -> Dict[str, object]:
        return {
            "events": [event.to_dict() for event in self.events.tail(n, kind)],
            "counts": self.events.counts(),
            "dropped": self.events.dropped,
        }

    def _trace_recent(self, n: int) -> Dict[str, object]:
        return {
            "traces": self.trace_buffer.recent(n),
            "completed": self.trace_buffer.completed,
            "recorded": self.trace_buffer.recorded,
        }

    def _profiles_recent(self, n: int) -> Dict[str, object]:
        buffer = self.profile_buffer
        return {
            "profiles": buffer.recent(n),
            "offered": buffer.offered,
            "recorded": buffer.recorded,
            "sample": buffer.sample,
        }

    def _profiles_worst(self, n: int) -> Dict[str, object]:
        buffer = self.profile_buffer
        return {
            "profiles": buffer.worst(n),
            "worst_q_error": buffer.worst_q_error(),
        }

    def _build_shard_pools(
        self, template: ShardedBackend, logs: Optional[Sequence[MutationLog]] = None
    ) -> Tuple[Tuple[ConnectionPool, ...], Tuple[MutationLog, ...]]:
        """One pool and one mutation log per shard of *template*.

        *logs* supplies pre-existing logs (the recovered durable ones);
        ``None`` creates fresh in-memory logs — the rebalance path, which
        rebuilds pools for a brand-new shard layout.
        """
        if logs is not None and len(logs) != len(template.children):
            raise StorageError(
                f"{len(logs)} mutation log(s) for {len(template.children)} "
                "shard(s)"
            )
        pools: List[ConnectionPool] = []
        used: List[MutationLog] = []
        try:
            for index, child in enumerate(template.children):
                log = logs[index] if logs is not None else MutationLog()
                pools.append(
                    ConnectionPool(
                        child,
                        size=self._pool_size,
                        max_waiters=self._max_waiters,
                        label=f"shard-{index}",
                        mutation_log=log,
                        events=self.events,
                    )
                )
                used.append(log)
        except Exception:
            for pool in pools:
                pool.close(force=True)
            raise
        return tuple(pools), tuple(used)

    def _close_template(self) -> None:
        self.executor.close()
        template = self.executor.backend
        if self._template_owned and not template.closed:
            template.close()

    def _reset_drift_baseline(
        self, catalog: Optional[object] = None
    ) -> None:
        """Remember the row counts the current statistics describe."""
        if catalog is None:
            catalog = getattr(self.system, "catalog", None)
        rows: Dict[str, float] = {}
        tables = getattr(catalog, "tables", None)
        if tables:
            for name, statistics in tables.items():
                rows[name] = float(statistics.row_count)
        else:
            for name, count in self.executor.backend.cardinalities().items():
                rows[name] = float(count)
        self._stats_rows = rows
        self._drift_rows = {}

    # ------------------------------------------------------------------
    # Reformulation (cache-aware, serialized)
    # ------------------------------------------------------------------
    def reformulate(self, query: XBindQuery) -> MarsReformulation:
        """The (possibly cached) reformulation the service would execute."""
        cache = self.plan_cache
        # Spans are grafted after the fact (add_phase on the measured
        # durations) rather than entered: nothing below needs the ambient
        # span, and a cache hit — the steady-state path — then costs one
        # span, not a context-managed subtree.
        parent = current_span()
        with self._reformulate_lock:
            # Read the miss counter on both sides of the call while still
            # holding the lock: read outside it, another thread's concurrent
            # miss would be misattributed to this call.
            before = cache.misses
            engine_before = self.system.engine_invocations
            clock = timer()
            reformulation = self.system.reformulate(query)
            seconds = clock.stop()
            missed = cache.misses != before
            compiled = self.system.engine_invocations != engine_before
        offset = clock.started - parent.start
        if missed and not compiled:
            # A plan-cache miss the disk store absorbed: the artifact was
            # decoded, re-ranked and re-rendered — no chase, no backchase.
            span = parent.add_phase(
                "reformulate", seconds, offset=offset,
                query=query.name, cache_hit=False, plan_store_hit=True,
            )
            span.add_phase("plan_store.load", seconds)
            with self._counter_lock:
                self._plans_loaded += 1
            self._m_plans_loaded.inc()
        elif missed:
            span = parent.add_phase(
                "reformulate", seconds, offset=offset,
                query=query.name, cache_hit=False,
            )
            # Graft the C&B engine's own phase readings into the tree
            # instead of re-timing them; whatever the engine did not
            # account for (cache probe, plan assembly) leads the span.
            chase_seconds = reformulation.time_to_universal_plan
            overhead = max(0.0, seconds - reformulation.time_to_best)
            span.add_phase("plan_cache.lookup", overhead, hit=False)
            span.add_phase("chase", chase_seconds, offset=overhead)
            span.add_phase(
                "backchase.initial",
                max(0.0, reformulation.time_to_initial - chase_seconds),
                offset=overhead + chase_seconds,
            )
            span.add_phase(
                "backchase.minimize",
                reformulation.minimization_time,
                offset=overhead + reformulation.time_to_initial,
            )
            with self._counter_lock:
                self._reformulations_computed += 1
            self._m_reformulations.inc()
        else:
            parent.add_phase(
                "plan_cache.lookup", seconds, offset=offset,
                query=query.name, hit=True,
            )
        return reformulation

    def warm(self, queries: Sequence[XBindQuery]) -> int:
        """Pre-populate the plan cache; returns how many plans were computed."""
        before = self._reformulations_computed
        for query in queries:
            self.reformulate(query)
        return self._reformulations_computed - before

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _check_strategy(self, strategy: Optional[str], distinct: bool) -> str:
        effective = strategy or self.strategy
        if effective not in (STRATEGY_BEST, STRATEGY_UNION):
            raise ValueError(f"unknown execution strategy {effective!r}")
        if effective == STRATEGY_UNION and not distinct:
            raise ValueError(
                "the union strategy executes all minimal reformulations, "
                "which only agree under set semantics; distinct=False is "
                "limited to the best-plan strategy"
            )
        return effective

    def plan_for(
        self, reformulation: MarsReformulation, strategy: Optional[str] = None
    ):
        """The executable plan for *reformulation* under *strategy*."""
        if not reformulation.found:
            raise ReformulationError(
                f"no reformulation of {reformulation.query.name} against the "
                "proprietary schema exists"
            )
        strategy = strategy or self.strategy
        if strategy not in (STRATEGY_BEST, STRATEGY_UNION):
            raise ValueError(f"unknown execution strategy {strategy!r}")
        if strategy == STRATEGY_UNION and len(reformulation.minimal) > 1:
            return UnionQuery(
                f"{reformulation.query.name}_union", reformulation.minimal
            )
        return reformulation.best

    @staticmethod
    def _execute_on(backend, plan, distinct: bool) -> List[Row]:
        if isinstance(plan, UnionQuery):
            return backend.execute_union(plan, distinct=True)
        return backend.execute(plan, distinct=distinct)

    def _run_plan(self, plan, distinct: bool) -> List[Row]:
        """Execute one plan on pooled storage (single pool or per-shard pools).

        On a sharded deployment the plan is routed first and connections
        are checked out *only for the shards the router names*, always in
        ascending shard order (uniform acquisition order means concurrent
        multi-shard publishes cannot deadlock against each other).
        """
        if self.pool is not None:
            # The LSN barrier: the checked-out clone must have replayed at
            # least every update this service has acknowledged, so a
            # client that just wrote reads its own write.
            with self.pool.connection(
                timeout=self.checkout_timeout, min_lsn=self._write_lsn
            ) as backend:
                with current_span().child(
                    "execute", engine=backend.backend_name
                ) as span:
                    rows = self._execute_on(backend, plan, distinct)
                    span.annotate(rows=len(rows))
                    return rows
        template = self.executor.backend
        with current_span().child("route") as route_span:
            route = template.route_plan(plan)
            route_span.annotate(
                disjuncts=len(route.decisions),
                modes=[decision.mode for _q, decision in route.decisions],
                shards=sorted(route.needed_shards),
            )
        acquired: List[Tuple[int, StorageBackend]] = []
        try:
            children = {}
            for shard in route.needed_shards:
                connection = self.shard_pools[shard].acquire(
                    timeout=self.checkout_timeout,
                    min_lsn=self.shard_logs[shard].lsn,
                )
                acquired.append((shard, connection))
                children[shard] = connection
            with current_span().child("execute") as span:
                rows = template.execute_routed(route, plan, distinct, children)
                span.annotate(rows=len(rows))
                return rows
        finally:
            for shard, connection in acquired:
                self.shard_pools[shard].release(connection)

    def publish(
        self,
        query: XBindQuery,
        distinct: bool = True,
        strategy: Optional[str] = None,
        trace: bool = False,
    ) -> List[Row]:
        """Reformulate (or hit the plan cache) and execute *query*; return rows.

        Every call is timed into ``mars_publish_latency_seconds`` and its
        outcome fed to the cost-feedback recorder; with tracing enabled
        (or *trace* forcing it for this call) the span tree is kept on
        :attr:`last_trace`.
        """
        rows, _tracked, _profile = self._publish_traced(
            query, distinct, strategy, trace
        )
        return rows

    def _publish_traced(
        self,
        query: XBindQuery,
        distinct: bool,
        strategy: Optional[str],
        trace: bool,
        profile: bool = False,
    ):
        if self._closed:
            raise StorageError("PublishingService is closed")
        effective = self._check_strategy(strategy, distinct)
        tracked = self.tracer.trace(
            "publish", force=trace, query=query.name, strategy=effective
        )
        # The profiling decision is made *before* execution (forced by
        # explain(analyze=True), else the buffer's deterministic 1-in-N
        # sampler): unsampled publishes run against NULL_PROFILE and
        # build no operator tree at all.
        profiling = profile or (
            self.profile_buffer is not None
            and self.profile_buffer.should_sample()
        )
        proot = (
            ProfileNode("execute", query.name, strategy=effective)
            if profiling
            else None
        )
        # The LSN barrier this request is served at (read-your-writes):
        # captured up front so the audit entry records the guarantee made.
        barrier_lsn = self._write_lsn
        clock = timer()
        try:
            with tracked.root:
                with self._gate.read():
                    reform_clock = timer()
                    reformulation = self.reformulate(query)
                    reform_seconds = reform_clock.stop()
                    plan = self.plan_for(reformulation, strategy=effective)
                    exec_clock = timer()
                    if proot is not None:
                        if reformulation.candidate_costs:
                            # The planner's rejected alternatives, priced:
                            # estimate-vs-actual attribution should name
                            # what *could* have run, not just what did.
                            proot.annotate(
                                candidate_costs=[
                                    [name, round(cost, 3)]
                                    for name, cost in (
                                        reformulation.candidate_costs
                                    )
                                ]
                            )
                        with proot:
                            rows = self._run_plan(plan, distinct)
                        proot.finish(actual_rows=len(rows))
                    else:
                        rows = self._run_plan(plan, distinct)
                    exec_seconds = exec_clock.stop()
        except Exception:
            self._m_publish_errors.inc()
            raise
        query_profile: Optional[QueryProfile] = None
        if proot is not None:
            query_profile = QueryProfile(
                proot,
                query=query.name,
                strategy=effective,
                plan=getattr(plan, "name", ""),
                forced=profile,
            )
            self.last_profile = query_profile
            if self.profile_buffer is not None:
                if self.profile_buffer.record(query_profile):
                    self._m_profiles.inc()
            else:
                self._m_profiles.inc()
        seconds = clock.stop()
        # Per-phase attribution: from the span tree when tracing is live,
        # else the two coarse timers above — the slow-query log and the
        # audit entry always carry a breakdown.
        phases = phase_breakdown(tracked.root) if tracked.enabled else {}
        if not phases:
            phases = {
                "reformulate": reform_seconds,
                "execute": exec_seconds,
            }
        with self._counter_lock:
            self._queries_served += 1
        self._m_publishes.inc()
        self._m_published_rows.inc(len(rows))
        self._m_publish_latency.observe(seconds)
        if self.slo is not None:
            violated = self.slo.observe(query.name, seconds)
            self._m_slo_requests.labels(query=query.name).inc()
            if violated:
                self._m_slo_violations.labels(query=query.name).inc()
        self._record_feedback(
            query, reformulation, plan, len(rows), exec_seconds,
            profile=query_profile,
        )
        self._note_slow(query, seconds, len(rows), phases)
        if tracked.enabled:
            tracked.root.annotate(rows=len(rows))
            self.last_trace = tracked
            self.trace_buffer.record(tracked)
        if self.audit is not None:
            self._audit_publish(
                query=query,
                reformulation=reformulation,
                strategy=effective,
                rows=len(rows),
                seconds=seconds,
                phases=phases,
                lsn=barrier_lsn,
                tracked=tracked,
            )
        return rows, tracked, query_profile

    def _record_feedback(
        self,
        query,
        reformulation,
        plan,
        actual_rows: int,
        seconds: float,
        profile: Optional[QueryProfile] = None,
    ) -> None:
        """Feed one execution's outcome to the cost-feedback recorder.

        A profiled publish also names its worst *operator* — the node
        with the largest per-operator q-error — so the misestimation
        report can point at the join step or shard fragment the error
        came from instead of the whole plan.
        """
        estimate = reformulation.cost_estimate
        if estimate is None:
            return
        worst_operator = None
        worst_q = 1.0
        if profile is not None:
            worst = profile.worst_operator()
            if worst is not None:
                worst_operator = worst.describe()
                worst_q = worst.q_error or 1.0
        self.cost_feedback.record(
            fingerprint=query.fingerprint(),
            plan_name=getattr(plan, "name", ""),
            estimated_rows=getattr(estimate, "cardinality", 0.0),
            estimated_cost=getattr(estimate, "total", 0.0),
            actual_rows=actual_rows,
            actual_seconds=seconds,
            worst_operator=worst_operator,
            worst_operator_q_error=worst_q,
        )
        self._m_feedback.inc()

    def _route_modes(self, tracked) -> List[str]:
        """The routing modes this publish took, for the audit entry."""
        if self.pool is not None:
            return ["single"]
        if tracked.enabled:
            for span in list(tracked.root.children):
                if span.name == "route":
                    modes = span.attributes.get("modes")
                    if modes:
                        return [str(mode) for mode in modes]
        return ["sharded"]

    def _audit_publish(
        self,
        query,
        reformulation,
        strategy: str,
        rows: int,
        seconds: float,
        phases: Dict[str, float],
        lsn: int,
        tracked,
    ) -> None:
        """Append one publish to the durable audit log (raises on failure)."""
        entry: Dict[str, object] = {
            "ts": time.time(),
            "kind": "publish",
            "query": query.name,
            # The structural fingerprint as its stable digest: the raw
            # tuple's repr drifts across refactors, the digest is the
            # durable form shared with plan-artifact identities (and it
            # is memoized on the query object).
            "fingerprint": query.fingerprint_digest(),
            "strategy": strategy,
            "route": self._route_modes(tracked),
            "lsn": lsn,
            "rows": rows,
            "seconds": seconds,
            "phases": phases,
        }
        estimate = reformulation.cost_estimate
        if estimate is not None:
            entry["estimate"] = {
                "rows": getattr(estimate, "cardinality", 0.0),
                "cost": getattr(estimate, "total", 0.0),
            }
        self.audit.record(entry)

    def _note_slow(
        self,
        query,
        seconds: float,
        rows: int,
        phases: Optional[Dict[str, float]] = None,
    ) -> None:
        """Count a slow publish; sample every Nth into the event log."""
        threshold = self.slow_query_seconds
        if threshold is None or seconds < threshold:
            return
        self._m_slow.inc()
        with self._counter_lock:
            self._slow_candidates += 1
            sampled = (self._slow_candidates - 1) % self.slow_query_sample == 0
        if sampled:
            details: Dict[str, object] = {
                "query": query.name,
                "seconds": seconds,
                "rows": rows,
                "threshold": threshold,
            }
            if phases:
                # Where the time went, phase by phase — the difference
                # between "the query was slow" and "the pool was starved".
                details["phases"] = dict(phases)
            self.events.record(SLOW_QUERY, **details)

    def slow_queries(self):
        """The sampled slow-query events retained in the event log."""
        return self.events.events(SLOW_QUERY)

    def publish_many(
        self,
        queries: Sequence[XBindQuery],
        distinct: bool = True,
        strategy: Optional[str] = None,
    ) -> List[List[Row]]:
        """Serve a batch of queries on this thread, reusing one connection.

        The same rules as :meth:`publish` apply to the whole batch.  On a
        sharded deployment each plan routes (and checks out connections)
        independently, so a batch of pruned queries never pins every shard
        at once.
        """
        if self._closed:
            raise StorageError("PublishingService is closed")
        effective = self._check_strategy(strategy, distinct)
        results: List[List[Row]] = []
        with self._gate.read():
            plans = [
                self.plan_for(self.reformulate(query), strategy=effective)
                for query in queries
            ]
            if self.pool is not None:
                with self.pool.connection(
                    timeout=self.checkout_timeout, min_lsn=self._write_lsn
                ) as backend:
                    for plan in plans:
                        results.append(self._execute_on(backend, plan, distinct))
            else:
                for plan in plans:
                    results.append(self._run_plan(plan, distinct))
        with self._counter_lock:
            self._queries_served += len(queries)
        return results

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------
    def update(self, changeset: ChangeSet) -> int:
        """Apply *changeset* to the live deployment; returns its LSN.

        The change set is applied to the template backend (routed per
        shard on a sharded deployment, fanned to every replica on a
        replicated one) and appended to the mutation log(s); pooled
        snapshot clones replay the tail on their next checkout, and
        :meth:`publish` enforces a read-your-writes LSN barrier, so a
        subsequent publish observes this update without any rebuild.

        Updates from different threads serialize behind one write lock.
        When cumulative writes drift a relation's row count more than
        ``drift_threshold`` (default 20%) past what the current statistics
        describe, statistics are re-collected and attached — which also
        flushes the plan cache — so cost-based routing keeps pricing the
        data that is actually stored.
        """
        if self._closed:
            raise StorageError("PublishingService is closed")
        if changeset.is_empty():
            return self._write_lsn
        tracked = self.tracer.trace("update", changes=len(changeset.changes))
        clock = timer()
        with tracked.root as root:
            if self.pool is not None:
                # One mutation log: the append is atomic, so concurrent
                # publishes (fellow gate readers) see the whole change set or
                # none of it when they sync to the log head.
                with self._gate.read():
                    with self._write_lock:
                        with root.child("apply"):
                            self.executor.backend.apply(changeset)
                        with root.child("log.append"):
                            lsn = self.mutation_log.append(changeset)
                        refresh = self._finish_update(changeset, lsn)
            else:
                # Per-shard logs: a change set spanning shards would otherwise
                # be observable half-applied (a publish syncs each shard's
                # pool independently), so cross-shard visibility is made
                # atomic by taking the gate exclusively — publishes drain,
                # every shard applies and appends, publishes resume.
                with self._gate.write():
                    with self._write_lock:
                        template = self.executor.backend
                        routed = template.route_changeset(changeset)
                        for shard, sub in sorted(routed.items()):
                            with root.child("apply", shard=shard):
                                template.children[shard].apply(sub)
                            with root.child("log.append", shard=shard):
                                self.shard_logs[shard].append(sub)
                        lsn = self._write_lsn + 1
                        refresh = self._finish_update(changeset, lsn)
            root.annotate(lsn=lsn)
        seconds = clock.stop()
        self._m_updates.inc()
        self._m_update_latency.observe(seconds)
        if tracked.enabled:
            self.last_trace = tracked
            self.trace_buffer.record(tracked)
        if self.audit is not None:
            phases = phase_breakdown(tracked.root) if tracked.enabled else {}
            self.audit.record(
                {
                    "ts": time.time(),
                    "kind": "update",
                    "lsn": lsn,
                    "changes": len(changeset.changes),
                    "seconds": seconds,
                    "phases": phases,
                }
            )
        if refresh:
            # Outside the gate: collecting statistics sweeps every table
            # and must not hold publishes (or a waiting rebalance) up.
            self._refresh_statistics(reason="drift")
        return lsn

    def _finish_update(self, changeset: ChangeSet, lsn: int) -> bool:
        """Shared bookkeeping under the write lock; returns the drift flag."""
        if self._rebalance_log is not None:
            # A rebalance is copying fragments right now: tee the change
            # so the new layout replays it.
            self._rebalance_log.append(changeset)
        self._write_lsn = lsn
        self._updates_applied += 1
        return self._note_drift(changeset)

    def _note_drift(self, changeset: ChangeSet) -> bool:
        """Account the written rows; True when drift crosses the threshold."""
        if self.drift_threshold is None or self.system.cost_model is None:
            return False
        triggered = False
        for change in changeset.changes:
            name = change.relation
            self._drift_rows[name] = self._drift_rows.get(name, 0.0) + change.touched
            baseline = max(1.0, self._stats_rows.get(name, 1.0))
            if self._drift_rows[name] > self.drift_threshold * baseline:
                triggered = True
        return triggered

    def _refresh_statistics(self, reason: str = "drift") -> None:
        """Re-collect statistics and re-rank plans (flushes the plan cache)."""
        catalog = self.executor.collect_statistics()
        with self._reformulate_lock:
            self.system.attach_statistics(catalog)
        self._reset_drift_baseline(catalog)
        with self._counter_lock:
            self._statistics_refreshes += 1
        self._m_statistics_refreshes.inc()
        self.events.record(
            STATISTICS_REFRESH,
            reason=reason,
            tables=len(getattr(catalog, "tables", None) or ()),
        )

    def misestimation_report(
        self, min_samples: int = 1, q_threshold: float = 1.0
    ) -> List[FingerprintFeedback]:
        """Per-fingerprint estimate-vs-actual feedback, worst q-error first."""
        return self.cost_feedback.report(
            min_samples=min_samples, q_threshold=q_threshold
        )

    def refresh_if_misestimated(
        self, q_threshold: float = 2.0, min_samples: int = 3
    ) -> bool:
        """Re-collect statistics when observed planning error is too large.

        Consults the cost-feedback report: when any fingerprint with at
        least *min_samples* executions shows a cardinality q-error of
        *q_threshold* or worse, statistics are re-collected and attached
        (flushing the plan cache) and the feedback aggregates are reset —
        the same corrective action row-count drift triggers, driven by
        observed misestimation instead of write volume.  Returns whether
        a refresh ran.
        """
        if self._closed:
            raise StorageError("PublishingService is closed")
        report = self.cost_feedback.report(
            min_samples=min_samples, q_threshold=q_threshold
        )
        if not report:
            return False
        self._refresh_statistics(reason="misestimation")
        self.cost_feedback.clear()
        return True

    # ------------------------------------------------------------------
    # Online rebalancing
    # ------------------------------------------------------------------
    def rebalance(
        self,
        shards: Optional[int] = None,
        children: Optional[Sequence[object]] = None,
    ) -> RebalanceReport:
        """Split or merge the sharded deployment's shards, online.

        Reads and writes keep flowing while the fragments are copied into
        the new layout (each table's snapshot pauses writers only
        briefly, and concurrent change sets are teed into a rebalance log
        the copier replays); the final log tail and the partition-map
        swap happen under an exclusive gate that drains in-flight
        publishes.  After the cutover the per-shard pools and mutation
        logs are rebuilt for the new layout and statistics are
        re-collected — which flushes the plan cache, so no plan priced
        under the old fragment sizes survives the new topology.
        """
        if self._closed:
            raise StorageError("PublishingService is closed")
        template = self.executor.backend
        if not isinstance(template, ShardedBackend):
            raise StorageError(
                "rebalance requires a sharded deployment "
                f"(template backend is {type(template).__name__})"
            )
        if self._durable:
            # The on-disk logs are bound to the shard layout they were
            # written under: a restart rebuilds that layout from the
            # configuration and replays each shard's log into it, so a
            # rebalanced (different) layout would replay rows into the
            # wrong fragments.  Re-deploy with the new shard count (and a
            # fresh log directory) instead.
            raise StorageError(
                "rebalance is not supported with a durable log directory: "
                "the segment logs are bound to the current shard layout"
            )
        clock = timer()
        with self._rebalance_lock:
            tee = MutationLog()
            rebalancer = Rebalancer(
                template, shards=shards, children=children, events=self.events
            )
            with self._write_lock:
                self._rebalance_log = tee
            try:
                rebalancer.stage()
                rebalancer.copy_all(log=tee, pause=lambda: self._write_lock)
                rebalancer.replay(tee)
                with self._gate.write():
                    with self._write_lock:
                        rebalancer.replay(tee)
                        old_children = rebalancer.cutover()
                        self._rebalance_log = None
                    old_pools = self.shard_pools
                    self.shard_pools, self.shard_logs = self._build_shard_pools(
                        template
                    )
                    for pool in old_pools:
                        pool.close()
            except Exception:
                rebalancer.abort()
                raise
            finally:
                with self._write_lock:
                    self._rebalance_log = None
            for child in old_children:
                if not child.closed:
                    child.close()
            self._wire_event_log(template)
            self._refresh_statistics(reason="rebalance")
            with self._counter_lock:
                self._rebalances += 1
        self._m_rebalances.inc()
        self._m_rebalance_latency.observe(clock.elapsed)
        return RebalanceReport(
            old_shard_count=len(old_pools),
            new_shard_count=template.shard_count,
            tables_copied=rebalancer.tables_copied,
            rows_copied=rebalancer.rows_copied,
            entries_replayed=rebalancer.entries_replayed,
            layout_version=template.layout_version,
            seconds=clock.stop(),
        )

    # ------------------------------------------------------------------
    # Durability and self-healing
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Snapshot the stored state and compact the durable log(s).

        Writes a checkpoint of every pool's backing store at the current
        log head (writers pause for the snapshot; publishes keep flowing),
        then drops the sealed segments the checkpoint covers.  Restart
        recovery becomes *restore snapshot + replay the remaining tail*
        instead of replaying the full history — and until the first
        checkpoint, nothing is ever compacted away, because the log is the
        only path from the configuration's base data to the acknowledged
        state.  Returns the highest checkpointed LSN.
        """
        if self._closed:
            raise StorageError("PublishingService is closed")
        if not self._durable:
            raise StorageError(
                "checkpoint requires a durable log (configure log_dir)"
            )
        template = self.executor.backend
        targets: List[Tuple[DurableMutationLog, StorageBackend]] = []
        if self.mutation_log is not None:
            targets.append((self.mutation_log, template))
        else:
            for child, log in zip(template.children, self.shard_logs):
                targets.append((log, child))
        lsns: List[int] = []
        segments_dropped = 0
        with self._write_lock:
            for log, store in targets:
                lsns.append(log.write_checkpoint(store))
        # Compaction outside the write lock: deleting segment files does
        # not touch the stores.  Pooled clones below the new floor are
        # rebuilt from the template on their next checkout (the pool's
        # stale-rebuild path) rather than erroring.
        for log, _store in targets:
            segments_dropped += log.compact(log.checkpoint_lsn)
        checkpoint_lsn = max(lsns, default=0)
        self.events.record(
            LOG_CHECKPOINT,
            lsn=checkpoint_lsn,
            logs=len(targets),
            entries_compacted=segments_dropped,
        )
        return checkpoint_lsn

    def repair_replicas(self) -> Tuple[RepairReport, ...]:
        """Re-provision dead replicas back to K live copies, online.

        Walks every replicated store the service owns (the template, or
        each sharded child that is replicated), and for each one with
        fenced/killed replicas runs the snapshot + log-replay + adopt
        protocol of :class:`~repro.replica.repair.ReplicaRepairer` —
        writers pause only for the snapshot and the final cutover.  Safe
        to call when nothing is dead (returns an empty tuple).  Each
        repair is recorded as a ``replica.repaired`` event and counted in
        ``mars_replica_repairs_total``.
        """
        if self._closed:
            raise StorageError("PublishingService is closed")
        template = self.executor.backend
        targets: List[Tuple[ReplicatedBackend, Optional[MutationLog]]] = []
        if isinstance(template, ReplicatedBackend):
            targets.append((template, self.mutation_log))
        elif isinstance(template, ShardedBackend):
            for index, child in enumerate(template.children):
                if isinstance(child, ReplicatedBackend):
                    log = (
                        self.shard_logs[index]
                        if index < len(self.shard_logs)
                        else None
                    )
                    targets.append((child, log))
        reports: List[RepairReport] = []
        # Serialized against rebalance: both swap live storage around.
        with self._rebalance_lock:
            for store, log in targets:
                repairer = ReplicaRepairer(store, events=self.events)
                if not repairer.dead_replicas():
                    continue
                report = repairer.repair_all(
                    log=log, pause=lambda: self._write_lock
                )
                reports.append(report)
                if report.repaired:
                    with self._counter_lock:
                        self._replica_repairs += len(report.repaired)
                    self._m_repairs.inc(len(report.repaired))
        return tuple(reports)

    def _auto_repair_tick(self) -> None:
        if not self._closed:
            self.repair_replicas()

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        with self._counter_lock:
            served = self._queries_served
            computed = self._reformulations_computed
            loaded = self._plans_loaded
            updates = self._updates_applied
            refreshes = self._statistics_refreshes
            rebalances = self._rebalances
            repairs = self._replica_repairs
        write_lsn = self._write_lsn
        template = self.executor.backend
        replicas = (
            template.stats() if isinstance(template, ReplicatedBackend) else None
        )
        failovers = self.events.count(REPLICA_FAILOVER)
        fenced = self.events.count(REPLICA_FENCED)
        dropped = self.events.dropped
        log_segments = 0
        log_bytes = 0
        for log in self._durable_logs():
            log_stats = log.stats()
            log_segments += log_stats.segments
            log_bytes += log_stats.size_bytes
        # The package version is read lazily (repro.serve is imported
        # while the repro package is still initialising, so a module-load
        # read would see a half-built package).
        import repro

        version = getattr(repro, "__version__", "unknown")
        uptime = self._started_clock.elapsed
        slo_entries = (
            tuple(self.slo.report()) if self.slo is not None else ()
        )
        audit_stats = self.audit.stats() if self.audit is not None else None
        store_stats = (
            self.plan_store.stats() if self.plan_store is not None else None
        )
        if self.pool is not None:
            return ServiceStats(
                queries_served=served,
                reformulations_computed=computed,
                cache=self.plan_cache.stats(),
                pool=self.pool.stats(),
                updates_applied=updates,
                last_write_lsn=write_lsn,
                statistics_refreshes=refreshes,
                rebalances=rebalances,
                replicas=replicas,
                replica_failovers=failovers,
                replica_fenced=fenced,
                replica_repairs=repairs,
                events_dropped=dropped,
                log_segments=log_segments,
                log_size_bytes=log_bytes,
                started_at=self.started_at,
                uptime_seconds=uptime,
                version=version,
                slo=slo_entries,
                audit=audit_stats,
                plans_loaded=loaded,
                plan_store=store_stats,
            )
        per_shard = tuple(pool.stats() for pool in self.shard_pools)
        aggregate = PoolStats(
            size=sum(stats.size for stats in per_shard),
            created=sum(stats.created for stats in per_shard),
            in_use=sum(stats.in_use for stats in per_shard),
            checkouts=sum(stats.checkouts for stats in per_shard),
            peak_in_use=sum(stats.peak_in_use for stats in per_shard),
            wait_count=sum(stats.wait_count for stats in per_shard),
            waiting=sum(stats.waiting for stats in per_shard),
            rejections=sum(stats.rejections for stats in per_shard),
            catchups=sum(stats.catchups for stats in per_shard),
            entries_replayed=sum(stats.entries_replayed for stats in per_shard),
            stale_rebuilds=sum(stats.stale_rebuilds for stats in per_shard),
            label=f"sharded({len(per_shard)})",
        )
        return ServiceStats(
            queries_served=served,
            reformulations_computed=computed,
            cache=self.plan_cache.stats(),
            pool=aggregate,
            shard_pools=per_shard,
            router=self.executor.backend.router.stats(),
            updates_applied=updates,
            last_write_lsn=write_lsn,
            statistics_refreshes=refreshes,
            rebalances=rebalances,
            replica_failovers=failovers,
            replica_fenced=fenced,
            replica_repairs=repairs,
            events_dropped=dropped,
            log_segments=log_segments,
            log_size_bytes=log_bytes,
            started_at=self.started_at,
            uptime_seconds=uptime,
            version=version,
            slo=slo_entries,
            audit=audit_stats,
            plans_loaded=loaded,
            plan_store=store_stats,
        )

    def metrics(self, fmt: str = "prometheus") -> str:
        """The metrics exposition: Prometheus text or JSON.

        ``fmt="prometheus"`` renders the text format (version 0.0.4) a
        scrape endpoint serves; ``fmt="json"`` the same data — including
        interpolated p50/p95/p99 per histogram — as a JSON document.
        Export runs the registered collectors, so gauges reflect the
        *Stats snapshots at call time.
        """
        if fmt == "prometheus":
            return self.registry.render_prometheus()
        if fmt == "json":
            return self.registry.to_json()
        raise ValueError(
            f"unknown metrics format {fmt!r} (use 'prometheus' or 'json')"
        )

    def explain(
        self,
        query: XBindQuery,
        distinct: bool = True,
        strategy: Optional[str] = None,
        trace: bool = False,
        analyze: bool = False,
    ):
        """The plan the service would run for *query* — or what it *did*.

        Without *analyze*: the (possibly cached) reformulation, the
        ranked candidate costs and the backend's own explanation, as
        text.  With ``analyze=True`` the query is actually published
        once with profiling forced on (regardless of ``profile_sample``)
        and the structured :class:`~repro.profile.QueryProfile` is
        returned instead — its root ``actual_rows`` is the published row
        count, its operator nodes carry per-operator estimate-vs-actual
        attribution, and it is also kept on :attr:`last_profile` (and in
        the profile buffer when one is configured).  With *trace* the
        query is published once with tracing forced on, and the
        resulting span tree is appended to the text.
        """
        if self._closed:
            raise StorageError("PublishingService is closed")
        if analyze:
            _rows, _tracked, profiled = self._publish_traced(
                query, distinct, strategy, trace, profile=True
            )
            return profiled
        effective = self._check_strategy(strategy, distinct)
        with self._gate.read():
            reformulation = self.reformulate(query)
            plan = self.plan_for(reformulation, strategy=effective)
            lines = [
                f"query {query.name}: plan "
                f"{getattr(plan, 'name', '?')} (strategy={effective})"
            ]
            if reformulation.candidate_costs:
                ranked = ", ".join(
                    f"{name}={cost:.1f}"
                    for name, cost in reformulation.candidate_costs
                )
                lines.append(f"  candidates: {ranked}")
            explain = getattr(self.executor.backend, "explain", None)
            if explain is not None:
                lines.extend(
                    "  " + line for line in explain(plan).splitlines()
                )
        if trace:
            _rows, tracked, _profile = self._publish_traced(
                query, distinct, effective, True
            )
            lines.append("")
            lines.append(tracked.render())
        return "\n".join(lines)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, force: bool = False) -> None:
        """Release the pools and the template backend; idempotent.

        Closing while publishes are still in flight fails loudly (the
        pools refuse to close over checked-out connections); pass
        ``force=True`` for emergency teardown.
        """
        if self._closed:
            return
        pools = ([self.pool] if self.pool is not None else []) + list(self.shard_pools)
        if not force:
            # Check all pools up front so a loud failure leaves nothing
            # half-closed (best effort: a racing in-flight publish can
            # still trip the per-pool check below).
            for pool in pools:
                if pool.stats().in_use:
                    raise StorageError(
                        "cannot close PublishingService: publishes still in "
                        "flight (wait for them, or close(force=True))"
                    )
        # The admin endpoint goes first: once teardown starts, a scrape
        # must not race half-closed storage (probes hitting the dead port
        # read connection-refused, the unambiguous "down").
        if self.admin is not None:
            self.admin.stop()
        # The repair loop must stop before storage goes away (a repair
        # racing the teardown would clone from closing replicas).
        if self._repair_loop is not None:
            self._repair_loop.stop()
        # Close the pools *before* marking the service closed: if a racing
        # publish slips past the sweep above and a pool refuses to close,
        # the service stays open and close() can simply be retried
        # (pool.close is idempotent once it succeeds).
        for pool in pools:
            pool.close(force=force)
        self._closed = True
        # Seal the audit log after the last acknowledgeable request (the
        # pools are closed, nothing can publish), then the durable logs
        # after the pools (a forced pool teardown may still sync a clone)
        # and before the template disappears.
        if self.audit is not None:
            self.audit.close()
        self._close_logs()
        self._close_template()

    def __enter__(self) -> "PublishingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
