"""The thread-safe publishing service: MARS behind a ``publish()`` call.

This is the piece that turns the reproduction from a library into a
servable system.  A :class:`PublishingService` owns

* one :class:`~repro.core.system.MarsSystem` (the C&B reformulation
  engine, serialized behind a lock — it is not reentrant) with an attached
  :class:`~repro.serve.cache.PlanCache`, so a repeated client query costs a
  cache lookup instead of a chase;
* one :class:`~repro.core.executor.MarsExecutor` that builds the
  proprietary instance data into a *template* backend exactly once;
* one :class:`~repro.serve.pool.ConnectionPool` of backend clones, so many
  threads can execute plans concurrently without sharing a SQLite
  connection across threads.

``publish(query)`` does cache-aware reformulation, checks a connection out
of the pool, runs the plan (optionally the whole union of minimal
reformulations as a single ``UNION`` round trip) and returns the rows.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.configuration import MarsConfiguration
from ..core.executor import MarsExecutor
from ..core.reformulation import MarsReformulation
from ..core.system import MarsSystem
from ..errors import ReformulationError, StorageError
from ..logical.queries import ConjunctiveQuery, UnionQuery
from ..shard import RouterStats, ShardedBackend
from ..storage.backends import StorageBackend
from ..xbind.query import XBindQuery
from .cache import CacheStats, PlanCache
from .pool import ConnectionPool, PoolStats

Row = Tuple[object, ...]

#: Execute only the cost-ranked best reformulation.
STRATEGY_BEST = "best"
#: Execute the union of every minimal reformulation in one round trip.
STRATEGY_UNION = "union"


@dataclass(frozen=True)
class ServiceStats:
    """One snapshot of service, plan-cache and pool counters.

    On a sharded deployment :attr:`pool` is the aggregate across shards,
    :attr:`shard_pools` breaks it down per shard (labelled ``shard-i``) and
    :attr:`router` reports the routing outcomes (how many queries were
    pruned to a single shard, scattered, or gathered).  The aggregate's
    ``peak_in_use`` sums per-shard peaks that may have occurred at
    different moments — it is an upper bound on the true concurrent peak,
    not an observation of one; size pools from the per-shard numbers.
    """

    queries_served: int
    reformulations_computed: int
    cache: CacheStats
    pool: PoolStats
    shard_pools: Tuple[PoolStats, ...] = ()
    router: Optional[RouterStats] = None


class PublishingService:
    """Serve XBind queries concurrently from pooled proprietary storage.

    Parameters default from the configuration (``backend``, ``pool_size``,
    ``plan_cache_size``); pass *system* to reuse an already-built
    :class:`MarsSystem` (its plan cache is adopted, or one is attached).
    The service is safe to share between threads; close it (or use it as a
    context manager) to release the pool and the template backend.
    """

    def __init__(
        self,
        configuration: MarsConfiguration,
        backend: Optional[object] = None,
        pool_size: Optional[int] = None,
        cache_size: Optional[int] = None,
        plan_cache: Optional[PlanCache] = None,
        system: Optional[MarsSystem] = None,
        strategy: str = STRATEGY_BEST,
        checkout_timeout: Optional[float] = 30.0,
        max_waiters: Optional[int] = None,
        refresh_statistics: bool = True,
    ):
        if strategy not in (STRATEGY_BEST, STRATEGY_UNION):
            raise ValueError(f"unknown execution strategy {strategy!r}")
        self.configuration = configuration
        self.strategy = strategy
        self.checkout_timeout = checkout_timeout
        if system is None:
            system = MarsSystem(configuration)
        if system.plan_cache is None:
            if plan_cache is None:
                size = (
                    cache_size
                    if cache_size is not None
                    else configuration.plan_cache_size
                )
                plan_cache = PlanCache(maxsize=size)
            system.plan_cache = plan_cache
        self.system = system
        self.plan_cache: PlanCache = system.plan_cache
        # Build the instance data once, into the template backend the pools
        # will clone from.
        self.executor = MarsExecutor(configuration, backend=backend)
        # Plan against measured statistics, not declarations: the built
        # backend is profiled once (the executor has already fed a sharded
        # router its cost model) and the system ranks reformulations with
        # the same numbers.  Skipped when the caller owns plan ranking
        # (refresh_statistics=False, or a system with an injected
        # estimator).
        if refresh_statistics and system.cost_model is not None:
            try:
                # A sharded backend was profiled moments ago, during the
                # executor build; reuse that catalog instead of re-running
                # the whole ANALYZE/COUNT(DISTINCT) sweep on every child.
                catalog = getattr(self.executor.backend, "statistics_catalog", None)
                if catalog is None:
                    catalog = self.executor.collect_statistics()
                system.attach_statistics(catalog)
            except Exception:
                self.executor.close()
                raise
        size = pool_size if pool_size is not None else configuration.pool_size
        # Sharded deployments get one pool *per shard*: a partition-key
        # bound query then occupies a connection on exactly one shard,
        # instead of pinning a full set of per-shard clones per request.
        self.pool: Optional[ConnectionPool] = None
        self.shard_pools: Tuple[ConnectionPool, ...] = ()
        template = self.executor.backend
        try:
            if isinstance(template, ShardedBackend):
                pools = []
                try:
                    for index, child in enumerate(template.children):
                        pools.append(
                            ConnectionPool(
                                child,
                                size=size,
                                max_waiters=max_waiters,
                                label=f"shard-{index}",
                            )
                        )
                except Exception:
                    for pool in pools:
                        pool.close(force=True)
                    raise
                self.shard_pools = tuple(pools)
            else:
                self.pool = ConnectionPool(template, size=size, max_waiters=max_waiters)
        except Exception:
            # Don't leak the template connection when pooling fails (bad
            # size, unclonable backend).
            self.executor.close()
            raise
        # The C&B engine mutates per-call state deep inside the chase; it is
        # correct but not reentrant, so reformulation is serialized.  Plan
        # execution — the per-request hot path — runs fully in parallel.
        self._reformulate_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._queries_served = 0
        self._reformulations_computed = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Reformulation (cache-aware, serialized)
    # ------------------------------------------------------------------
    def reformulate(self, query: XBindQuery) -> MarsReformulation:
        """The (possibly cached) reformulation the service would execute."""
        cache = self.plan_cache
        with self._reformulate_lock:
            # Read the miss counter on both sides of the call while still
            # holding the lock: read outside it, another thread's concurrent
            # miss would be misattributed to this call.
            before = cache.misses
            reformulation = self.system.reformulate(query)
            missed = cache.misses != before
        if missed:
            with self._counter_lock:
                self._reformulations_computed += 1
        return reformulation

    def warm(self, queries: Sequence[XBindQuery]) -> int:
        """Pre-populate the plan cache; returns how many plans were computed."""
        before = self._reformulations_computed
        for query in queries:
            self.reformulate(query)
        return self._reformulations_computed - before

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _check_strategy(self, strategy: Optional[str], distinct: bool) -> str:
        effective = strategy or self.strategy
        if effective not in (STRATEGY_BEST, STRATEGY_UNION):
            raise ValueError(f"unknown execution strategy {effective!r}")
        if effective == STRATEGY_UNION and not distinct:
            raise ValueError(
                "the union strategy executes all minimal reformulations, "
                "which only agree under set semantics; distinct=False is "
                "limited to the best-plan strategy"
            )
        return effective

    def plan_for(
        self, reformulation: MarsReformulation, strategy: Optional[str] = None
    ):
        """The executable plan for *reformulation* under *strategy*."""
        if not reformulation.found:
            raise ReformulationError(
                f"no reformulation of {reformulation.query.name} against the "
                "proprietary schema exists"
            )
        strategy = strategy or self.strategy
        if strategy not in (STRATEGY_BEST, STRATEGY_UNION):
            raise ValueError(f"unknown execution strategy {strategy!r}")
        if strategy == STRATEGY_UNION and len(reformulation.minimal) > 1:
            return UnionQuery(
                f"{reformulation.query.name}_union", reformulation.minimal
            )
        return reformulation.best

    @staticmethod
    def _execute_on(backend, plan, distinct: bool) -> List[Row]:
        if isinstance(plan, UnionQuery):
            return backend.execute_union(plan, distinct=True)
        return backend.execute(plan, distinct=distinct)

    def _run_plan(self, plan, distinct: bool) -> List[Row]:
        """Execute one plan on pooled storage (single pool or per-shard pools).

        On a sharded deployment the plan is routed first and connections
        are checked out *only for the shards the router names*, always in
        ascending shard order (uniform acquisition order means concurrent
        multi-shard publishes cannot deadlock against each other).
        """
        if self.pool is not None:
            with self.pool.connection(timeout=self.checkout_timeout) as backend:
                return self._execute_on(backend, plan, distinct)
        template = self.executor.backend
        route = template.route_plan(plan)
        acquired: List[Tuple[int, StorageBackend]] = []
        try:
            children = {}
            for shard in route.needed_shards:
                connection = self.shard_pools[shard].acquire(
                    timeout=self.checkout_timeout
                )
                acquired.append((shard, connection))
                children[shard] = connection
            return template.execute_routed(route, plan, distinct, children)
        finally:
            for shard, connection in acquired:
                self.shard_pools[shard].release(connection)

    def publish(
        self,
        query: XBindQuery,
        distinct: bool = True,
        strategy: Optional[str] = None,
    ) -> List[Row]:
        """Reformulate (or hit the plan cache) and execute *query*; return rows."""
        if self._closed:
            raise StorageError("PublishingService is closed")
        effective = self._check_strategy(strategy, distinct)
        plan = self.plan_for(self.reformulate(query), strategy=effective)
        rows = self._run_plan(plan, distinct)
        with self._counter_lock:
            self._queries_served += 1
        return rows

    def publish_many(
        self,
        queries: Sequence[XBindQuery],
        distinct: bool = True,
        strategy: Optional[str] = None,
    ) -> List[List[Row]]:
        """Serve a batch of queries on this thread, reusing one connection.

        The same rules as :meth:`publish` apply to the whole batch.  On a
        sharded deployment each plan routes (and checks out connections)
        independently, so a batch of pruned queries never pins every shard
        at once.
        """
        if self._closed:
            raise StorageError("PublishingService is closed")
        effective = self._check_strategy(strategy, distinct)
        plans = [
            self.plan_for(self.reformulate(query), strategy=effective)
            for query in queries
        ]
        results: List[List[Row]] = []
        if self.pool is not None:
            with self.pool.connection(timeout=self.checkout_timeout) as backend:
                for plan in plans:
                    results.append(self._execute_on(backend, plan, distinct))
        else:
            for plan in plans:
                results.append(self._run_plan(plan, distinct))
        with self._counter_lock:
            self._queries_served += len(queries)
        return results

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        with self._counter_lock:
            served = self._queries_served
            computed = self._reformulations_computed
        if self.pool is not None:
            return ServiceStats(
                queries_served=served,
                reformulations_computed=computed,
                cache=self.plan_cache.stats(),
                pool=self.pool.stats(),
            )
        per_shard = tuple(pool.stats() for pool in self.shard_pools)
        aggregate = PoolStats(
            size=sum(stats.size for stats in per_shard),
            created=sum(stats.created for stats in per_shard),
            in_use=sum(stats.in_use for stats in per_shard),
            checkouts=sum(stats.checkouts for stats in per_shard),
            peak_in_use=sum(stats.peak_in_use for stats in per_shard),
            wait_count=sum(stats.wait_count for stats in per_shard),
            waiting=sum(stats.waiting for stats in per_shard),
            rejections=sum(stats.rejections for stats in per_shard),
            label=f"sharded({len(per_shard)})",
        )
        return ServiceStats(
            queries_served=served,
            reformulations_computed=computed,
            cache=self.plan_cache.stats(),
            pool=aggregate,
            shard_pools=per_shard,
            router=self.executor.backend.router.stats(),
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, force: bool = False) -> None:
        """Release the pools and the template backend; idempotent.

        Closing while publishes are still in flight fails loudly (the
        pools refuse to close over checked-out connections); pass
        ``force=True`` for emergency teardown.
        """
        if self._closed:
            return
        pools = ([self.pool] if self.pool is not None else []) + list(self.shard_pools)
        if not force:
            # Check all pools up front so a loud failure leaves nothing
            # half-closed (best effort: a racing in-flight publish can
            # still trip the per-pool check below).
            for pool in pools:
                if pool.stats().in_use:
                    raise StorageError(
                        "cannot close PublishingService: publishes still in "
                        "flight (wait for them, or close(force=True))"
                    )
        # Close the pools *before* marking the service closed: if a racing
        # publish slips past the sweep above and a pool refuses to close,
        # the service stays open and close() can simply be retried
        # (pool.close is idempotent once it succeeds).
        for pool in pools:
            pool.close(force=force)
        self._closed = True
        self.executor.close()

    def __enter__(self) -> "PublishingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
