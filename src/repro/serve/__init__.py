"""Concurrent serving of MARS reformulations from pooled storage.

The :class:`PublishingService` is the front door of a deployment: a
thread-safe ``publish(query) -> rows`` API combining

* a :class:`PlanCache` — an LRU on the query's structural fingerprint
  *and the configuration version*, so repeat queries skip the C&B engine
  and plans computed under superseded views/constraints are flushed, not
  served;
* :class:`ConnectionPool`\\ s of backend clones with admission control
  (a bounded ``max_waiters`` queue; rejected acquires raise
  :class:`PoolExhaustedError` carrying the stats snapshot) — one pool per
  shard on a sharded deployment, so a partition-key-bound query occupies
  exactly one shard's connection;
* single-round-trip union execution (``strategy="union"``) and
  cost-based planning: at startup the service profiles the built backend
  and attaches the statistics catalog to its
  :class:`~repro.core.system.MarsSystem`;
* a live write path: ``update(changeset)`` applies a
  :class:`~repro.replica.ChangeSet` to the template backend and appends
  it to per-pool :class:`~repro.replica.MutationLog`\\ s, pooled snapshot
  clones replay the tail at checkout/checkin, and ``publish`` enforces a
  read-your-writes LSN barrier — plus adaptive statistics re-collection
  when writes drift row counts past a threshold;
* online rebalancing: ``rebalance(shards=...)`` splits/merges a sharded
  deployment's shards under live traffic (fragment snapshot, mutation-log
  tail replay, atomic partition-map swap, pool rebuild, plan-cache
  flush);
* durability and self-healing: with ``log_dir`` configured the mutation
  logs are :class:`~repro.replica.DurableMutationLog`\\ s — acknowledged
  updates survive a restart (segment replay after an optional checkpoint
  restore), ``checkpoint()`` bounds the replay, and ``repair_replicas()``
  (or the ``auto_repair_interval`` background loop) re-provisions dead
  replicas back to K live copies from a live snapshot plus the log tail.

``stats()`` returns a :class:`ServiceStats` snapshot: served/computed
counters, cache hit rates, per-shard pool breakdowns (including
catch-up replay counts), the router's routing (and cost-comparison)
outcomes, and the write-path counters (updates applied, last LSN,
statistics refreshes, rebalances).
"""

from .cache import CacheStats, PlanCache
from .pool import ConnectionPool, PoolExhaustedError, PoolStats
from .service import (
    STRATEGY_BEST,
    STRATEGY_UNION,
    PublishingService,
    ServiceStats,
)

__all__ = [
    "CacheStats",
    "ConnectionPool",
    "PlanCache",
    "PoolExhaustedError",
    "PoolStats",
    "PublishingService",
    "STRATEGY_BEST",
    "STRATEGY_UNION",
    "ServiceStats",
]
