"""Concurrent serving of MARS reformulations from pooled storage.

The :class:`PublishingService` is the front door of a deployment: a
thread-safe ``publish(query) -> rows`` API combining a plan cache (repeat
queries skip the C&B engine), a connection pool (SQLite handles are not
shareable across threads) and single-round-trip union execution.
"""

from .cache import CacheStats, PlanCache
from .pool import ConnectionPool, PoolExhaustedError, PoolStats
from .service import (
    STRATEGY_BEST,
    STRATEGY_UNION,
    PublishingService,
    ServiceStats,
)

__all__ = [
    "CacheStats",
    "ConnectionPool",
    "PlanCache",
    "PoolExhaustedError",
    "PoolStats",
    "PublishingService",
    "STRATEGY_BEST",
    "STRATEGY_UNION",
    "ServiceStats",
]
