"""E3 -- Figure 5: scalability of reformulation on the XML star queries.

The paper measures, for NC = 3..10 (with NV = NC - 1 redundant views), the
time to find the *initial* reformulation and the additional time ("delta")
to find the *best minimal* reformulation.  Both curves grow with NC but stay
in the sub-second/seconds range, which is negligible against the execution
times the reformulations save.
"""

import time

import pytest

from repro.core import MarsSystem
from repro.workloads import star
from repro.workloads.star import StarParameters

SWEEP = (3, 4, 5, 6, 7, 8)
FULL_SWEEP = (3, 4, 5, 6, 7, 8, 9, 10)


def reformulate(corners: int):
    parameters = StarParameters(corners=corners)
    system = MarsSystem(star.build_configuration(parameters))
    query = star.client_query(parameters)
    return system.reformulate(query)


@pytest.mark.parametrize("corners", [3, 5, 7])
def test_star_reformulation_benchmark(benchmark, corners):
    result = benchmark.pedantic(reformulate, args=(corners,), iterations=1, rounds=2)
    assert result.found


def test_report_figure5_series(full_sweep):
    sweep = FULL_SWEEP if full_sweep else SWEEP
    print("\nE3 / Figure 5: scalability of reformulation (times in ms)")
    print(f"  {'NC':>4s} {'initial':>10s} {'delta to best':>14s} {'total':>10s} {'#minimal':>9s}")
    previous_total = 0.0
    for corners in sweep:
        result = reformulate(corners)
        assert result.found, f"no reformulation at NC={corners}"
        initial_ms = result.time_to_initial * 1000
        delta_ms = result.minimization_time * 1000
        total_ms = result.time_to_best * 1000
        print(
            f"  {corners:4d} {initial_ms:10.1f} {delta_ms:14.1f} {total_ms:10.1f}"
            f" {len(result.minimal):9d}"
        )
        previous_total = total_ms
    # Shape check: the largest configuration must still reformulate, and the
    # best reformulation must exploit the redundant views.
    assert previous_total > 0.0
    final = reformulate(sweep[-1])
    assert any(name.startswith("V") for name in final.best.relation_names())
