"""Backend comparison: in-memory hash joins vs. real SQLite execution.

The paper's MARS ships its reformulations to an RDBMS; this benchmark
measures what that buys.  For the star and XMark workloads at increasing
scale factors we reformulate once, then execute the best reformulation on
the ``memory`` backend (naive hash joins over Python lists) and on the
``sqlite`` backend (parameterized SQL on real tables with indexes on the
join columns), reporting per-backend load and execution times.
"""

import time

import pytest

from repro.core import MarsExecutor, MarsSystem
from repro.workloads import star, xmark
from repro.workloads.star import StarParameters

BACKENDS = ("memory", "sqlite")


def timed_executor(configuration, backend):
    start = time.perf_counter()
    executor = MarsExecutor(configuration, backend=backend)
    return executor, time.perf_counter() - start


def best_execution_ms(executor, reformulation, rounds=3):
    rows = None
    start = time.perf_counter()
    for _ in range(rounds):
        rows = executor.execute_reformulation(reformulation)
    elapsed = (time.perf_counter() - start) / rounds
    return rows, elapsed * 1000.0


def star_case(scale):
    parameters = StarParameters(
        corners=3, hub_count=30 * scale, corner_size=25 * scale
    )
    configuration = star.build_configuration(parameters, with_instance=True)
    return configuration, star.client_query(parameters)


def xmark_case(scale):
    parameters = xmark.XMarkParameters(
        items_per_region=8 * scale, people=15 * scale, closed_auctions=20 * scale
    )
    configuration = xmark.build_configuration(parameters)
    return configuration, xmark.query_buyers_with_items()


CASES = {"star": star_case, "xmark": xmark_case}


class TestBackendComparison:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_star_execution_benchmark(self, benchmark, backend):
        configuration, query = star_case(2)
        system = MarsSystem(configuration)
        result = system.reformulate(query)
        assert result.found
        executor = MarsExecutor(configuration, backend=backend)
        benchmark.pedantic(
            executor.execute_reformulation,
            args=(result.best,),
            iterations=1,
            rounds=3,
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_xmark_execution_benchmark(self, benchmark, backend):
        configuration, query = xmark_case(2)
        system = MarsSystem(configuration)
        result = system.reformulate(query)
        assert result.found
        executor = MarsExecutor(configuration, backend=backend)
        benchmark.pedantic(
            executor.execute_reformulation,
            args=(result.best,),
            iterations=1,
            rounds=3,
        )

    def test_report_backend_scaling(self, full_sweep):
        scales = (1, 2, 4, 8) if full_sweep else (1, 2, 4)
        print("\nBackend execution comparison (load = build instance data)")
        header = (
            f"  {'workload':<8s} {'scale':>5s} "
            + "".join(
                f"{name + ' load (ms)':>18s} {name + ' exec (ms)':>18s}"
                for name in BACKENDS
            )
            + f" {'agree':>6s}"
        )
        print(header)
        for workload, case in CASES.items():
            for scale in scales:
                configuration, query = case(scale)
                system = MarsSystem(configuration)
                result = system.reformulate(query)
                assert result.found
                cells = []
                answers = []
                for backend in BACKENDS:
                    executor, load_seconds = timed_executor(configuration, backend)
                    rows, execution_ms = best_execution_ms(executor, result.best)
                    answers.append(sorted(map(repr, rows)))
                    cells.append(f"{load_seconds * 1000.0:18.1f} {execution_ms:18.2f}")
                    executor.close()
                agree = all(answer == answers[0] for answer in answers)
                assert agree, f"{workload}@{scale}: backends disagree"
                print(
                    f"  {workload:<8s} {scale:>5d} " + "".join(cells) + f" {agree!s:>6s}"
                )

    def test_report_sqlite_plans(self):
        """Show that SQLite actually uses the indexes built on join columns."""
        configuration, query = xmark_case(1)
        system = MarsSystem(configuration)
        result = system.reformulate(query)
        executor = MarsExecutor(configuration, backend="sqlite")
        plan = executor.explain_reformulation(result.best)
        print("\n" + plan)
        assert "USING INDEX" in plan or "SEARCH" in plan
        executor.close()
