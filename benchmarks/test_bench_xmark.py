"""E6 -- feasibility of reformulation on the XMark-style scenario.

The paper runs realistic queries and views derived from the XMark benchmark
and reports that reformulation stays well within feasibility range, about
350 ms on average per query on 2003 hardware, and that the reformulated
queries (exploiting the redundant storage) execute much faster than the
originals.  We reproduce the query mix over the auction configuration and
report per-query and average reformulation times, plus the execution
comparison on a generated instance.
"""

import pytest

from repro.core import MarsExecutor, MarsSystem
from repro.workloads import xmark


@pytest.fixture(scope="module")
def system():
    return MarsSystem(xmark.build_configuration(with_instance=False))


def reformulate_suite(system):
    return [system.reformulate(query) for query in xmark.query_suite()]


def test_xmark_suite_benchmark(benchmark, system):
    results = benchmark.pedantic(reformulate_suite, args=(system,), iterations=1, rounds=2)
    assert all(result.found for result in results)


def test_report_per_query_times(system):
    print("\nE6: XMark-style reformulation feasibility")
    print(f"  {'query':<20s} {'time (ms)':>10s} {'best uses':<40s}")
    times = []
    for query in xmark.query_suite():
        result = system.reformulate(query)
        assert result.found, query.name
        milliseconds = result.time_to_best * 1000
        times.append(milliseconds)
        uses = ", ".join(sorted(result.best.relation_names()))
        print(f"  {query.name:<20s} {milliseconds:10.1f} {uses[:60]:<40s}")
    average = sum(times) / len(times)
    print(f"  {'AVERAGE':<20s} {average:10.1f}")
    # Feasibility claim: the average stays within the same order of magnitude
    # as the paper's 350 ms figure (we allow a generous bound).
    assert average < 5000.0


def test_report_execution_comparison():
    configuration = xmark.build_configuration(
        xmark.XMarkParameters(items_per_region=15, people=30, closed_auctions=40),
        with_instance=True,
    )
    system = MarsSystem(configuration)
    executor = MarsExecutor(configuration)
    print("\nE6b: execution of original vs reformulated XMark queries")
    for query in (
        xmark.query_item_names(),
        xmark.query_item_prices(),
        xmark.query_person_cities(),
    ):
        result = system.reformulate(query)
        comparison = executor.compare(query, result.best)
        assert comparison.answers_match
        print(
            f"  {query.name:<20s} original {comparison.original_seconds*1000:8.1f} ms"
            f"   reformulated {comparison.reformulated_seconds*1000:8.1f} ms"
            f"   speedup {comparison.speedup:6.1f}x"
        )
