"""Observability overhead: full tracing must cost < 5% on the publish path.

The instrumentation bargain of the obs package is that always-on tracing
is affordable: a warmed-cache publish allocates a handful of span objects
(the trace root, the plan-cache lookup phase, pool checkout, execute),
the ambient stack is a thread-local list, and metrics are GIL-atomic
float updates.  Measured on this machine the whole traced shape is a
single-digit-microsecond constant per publish.

Two numbers are produced:

* **The asserted headline** — publish latency with tracing on vs. off on
  the paper's benchmark workload (xmark at the backend sweep's top scale,
  the same configuration ``test_bench_replica`` uses), warmed plan cache,
  interleaved min-of-trials — measured with the rest of the operational
  tier (the admin HTTP endpoint on an ephemeral port and the durable
  JSONL audit log) enabled on **both** services, so the bound covers the
  production shape, not a stripped one.  The overhead must stay under
  **5%**.  The traced side pays everything tracing feeds: the span tree
  itself, the per-phase breakdown in each audit entry, and the
  ``/traces/recent`` ring snapshot.
* **The reported worst case** — the same comparison on the tiny medical
  workload, whose warmed publish is little more than a plan-cache probe
  and a sub-200-microsecond in-memory scan.  Against that floor the fixed
  span cost is proportionally largest; the number is printed so the
  constant stays visible, but hardware noise at that scale makes it a
  report, not an assertion.

Methodology: both services are warmed first, then trials alternate
between them (base, traced, base, traced, ...) so both see the same
machine conditions; the **minimum** trial time per service is compared,
which discards scheduler noise and GC pauses rather than averaging them
in.  The headline assertion takes the best of up to three measurement
attempts: on a shared box the min-of-trials estimate itself still
scatters a couple of percent between runs, and a genuinely over-budget
implementation fails every attempt, while a within-budget one only has
to find one quiet window.
"""

import tempfile

from repro.obs import NULL_TRACE, timer
from repro.serve import PublishingService
from repro.workloads import medical, xmark

#: The top xmark scale of the backend benchmark sweep (scale factor 8).
TOP_SCALE = 8
MAX_OVERHEAD = 0.05


def top_xmark_configuration(scale=TOP_SCALE):
    parameters = xmark.XMarkParameters(
        items_per_region=8 * scale,
        people=15 * scale,
        closed_auctions=20 * scale,
    )
    return xmark.build_configuration(parameters)


def _measure_pair(make_service, queries, trials, rounds_per_trial, warmup):
    """Interleaved min-of-trials seconds-per-publish for (base, traced)."""
    services = {}
    for tracing in (False, True):
        service = services[tracing] = make_service(tracing)
        for query in queries:
            for _ in range(warmup):
                service.publish(query)
    assert services[False].last_trace is NULL_TRACE
    assert services[True].last_trace is not NULL_TRACE
    best = {False: None, True: None}
    try:
        for _ in range(trials):
            for tracing in (False, True):
                service = services[tracing]
                clock = timer()
                for _ in range(rounds_per_trial):
                    for query in queries:
                        service.publish(query)
                seconds = clock.stop()
                previous = best[tracing]
                best[tracing] = (
                    seconds if previous is None else min(previous, seconds)
                )
    finally:
        for service in services.values():
            service.close()
    publishes = rounds_per_trial * len(queries)
    return best[False] / publishes, best[True] / publishes


def _report(title, base, traced):
    overhead = traced / base - 1.0
    print(
        f"\n{title}:"
        f"\n  tracing off: {base * 1e6:8.1f} us/publish"
        f"\n  tracing on:  {traced * 1e6:8.1f} us/publish"
        f"\n  overhead:    {overhead * 100:8.2f} % "
        f"({(traced - base) * 1e6:+.1f} us/publish)"
    )
    return overhead


class TestTracingOverhead:
    def test_full_tracing_publish_overhead_under_five_percent(self):
        """The acceptance criterion, on the paper's benchmark workload —
        with the admin endpoint live and the audit log recording on both
        sides of the comparison."""
        queries = [xmark.query_item_names()] + list(xmark.query_suite())[:3]
        overhead = None
        for attempt in range(3):
            with tempfile.TemporaryDirectory(
                prefix="mars-audit-bench-"
            ) as audit:
                base, traced = _measure_pair(
                    lambda tracing: PublishingService(
                        top_xmark_configuration(),
                        pool_size=2,
                        tracing=tracing,
                        admin_port=0,
                        audit_dir=f"{audit}/{'traced' if tracing else 'base'}",
                    ),
                    queries,
                    trials=20,
                    rounds_per_trial=10,
                    warmup=5,
                )
            measured = _report(
                f"Publish-path tracing overhead, attempt {attempt + 1} "
                f"(xmark scale {TOP_SCALE}, admin endpoint + audit log "
                "enabled)",
                base,
                traced,
            )
            overhead = measured if overhead is None else min(overhead, measured)
            if overhead < MAX_OVERHEAD:
                break
        assert overhead < MAX_OVERHEAD, (
            f"full tracing cost {overhead:.1%} on the warmed publish "
            f"path with the operational tier enabled, on every attempt; "
            f"the budget is {MAX_OVERHEAD:.0%}"
        )

    def test_toy_query_overhead_is_reported(self):
        """The worst case: the fixed span cost against the cheapest
        possible publish.  Reported for visibility, not asserted — at
        sub-200us per publish the comparison is hardware noise."""
        base, traced = _measure_pair(
            lambda tracing: PublishingService(
                medical.build_configuration(), pool_size=2, tracing=tracing
            ),
            [medical.client_query()],
            trials=15,
            rounds_per_trial=200,
            warmup=50,
        )
        _report("Toy-workload floor (medical, reported only)", base, traced)

    def test_disabled_tracing_publish_is_null_trace(self):
        """The guard the overhead numbers rest on: disabled tracing takes
        the singleton path — no trace object survives a publish."""
        with PublishingService(
            medical.build_configuration(), pool_size=1, tracing=False
        ) as service:
            for _ in range(3):
                service.publish(medical.client_query())
            assert service.last_trace is NULL_TRACE
            assert service.tracer.trace("publish") is NULL_TRACE
