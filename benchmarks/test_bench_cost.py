"""Cost-based routing vs fixed rules on broadcast-heavy sharded joins.

The fixed routing rules always *scatter* a co-partitioned query — the plan
runs unchanged on every shard.  That re-scans every broadcast table once
per shard, so when a small partitioned table joins a large broadcast
table, scattering multiplies the dominant scan by the shard count.  The
cost-based router prices both sound modes and flips the query to *gather*
(ship the small fragments, scan the broadcast table once).

This benchmark measures that flip: the same query on the same sharded
store, routed by the fixed rules (no statistics attached) and by the cost
model (after ``refresh_statistics()``).  The acceptance check asserts the
cost-routed execution wins at the largest broadcast size tested.
Statistics-collection time is reported alongside — it is the price of
admission and must stay a one-off startup cost.
"""

import time

from repro.logical.atoms import RelationalAtom
from repro.logical.queries import ConjunctiveQuery
from repro.logical.terms import Variable
from repro.shard import MODE_GATHER, MODE_SCATTER, ShardedBackend

SHARDS = 4
ROUNDS = 5


def build(broadcast_rows, partitioned_rows=64):
    backend = ShardedBackend(
        shards=SHARDS, children="memory", partition_keys={"P": "k"}
    )
    backend.create_table("P", 2, ("k", "v"))
    backend.create_table("B", 2, ("v", "w"))
    backend.insert_many("P", [(i, i % 50) for i in range(partitioned_rows)])
    backend.insert_many(
        "B", [(i % 50, f"payload{i}") for i in range(broadcast_rows)]
    )
    return backend


def query():
    k, v, w = Variable("k"), Variable("v"), Variable("w")
    return ConjunctiveQuery(
        "co", (k, w), (RelationalAtom("P", (k, v)), RelationalAtom("B", (v, w)))
    )


def best_ms(backend, plan, rounds=ROUNDS):
    best = float("inf")
    rows = None
    for _ in range(rounds):
        start = time.perf_counter()
        rows = backend.execute(plan)
        best = min(best, time.perf_counter() - start)
    return rows, best * 1000.0


class TestCostRoutingBenchmark:
    def test_cost_router_beats_fixed_rules_on_broadcast_joins(self, full_sweep):
        sizes = (20_000, 60_000, 120_000) if full_sweep else (10_000, 40_000)
        print(
            f"\nCost-based routing: P(64) |x| broadcast B on {SHARDS} shards"
        )
        print(
            f"  {'B rows':>8s} {'scatter (ms)':>13s} {'gather (ms)':>12s} "
            f"{'speedup':>8s} {'collect (ms)':>13s}"
        )
        top = max(sizes)
        top_rule = top_cost = None
        for size in sizes:
            backend = build(size)
            plan = query()
            # Fixed rules first: no statistics, co-partitioned => scatter.
            decision = backend.router.route(plan)
            assert decision.mode == MODE_SCATTER
            expected, rule_ms = best_ms(backend, plan)
            # Attach the model; the router flips the same query to gather.
            start = time.perf_counter()
            backend.refresh_statistics()
            collect_ms = (time.perf_counter() - start) * 1000.0
            decision = backend.router.route(plan)
            assert decision.mode == MODE_GATHER, decision.reason
            assert decision.estimated_cost < decision.alternative_cost
            rows, cost_ms = best_ms(backend, plan)
            assert sorted(rows) == sorted(expected), "modes disagreed"
            print(
                f"  {size:>8d} {rule_ms:>13.2f} {cost_ms:>12.2f} "
                f"{rule_ms / cost_ms:>7.2f}x {collect_ms:>13.2f}"
            )
            if size == top:
                top_rule, top_cost = rule_ms, cost_ms
            backend.close()
        assert top_cost < top_rule, (
            f"cost-routed gather ({top_cost:.2f} ms) did not beat rule-based "
            f"scatter ({top_rule:.2f} ms) at {top} broadcast rows"
        )

    def test_statistics_collection_is_startup_scale(self):
        """Collection must be far cheaper than a single scatter execution."""
        backend = build(40_000)
        plan = query()
        _expected, scatter_ms = best_ms(backend, plan, rounds=3)
        start = time.perf_counter()
        backend.refresh_statistics()
        collect_ms = (time.perf_counter() - start) * 1000.0
        print(
            f"\nstatistics collection: {collect_ms:.2f} ms "
            f"(one scatter of the same store: {scatter_ms:.2f} ms)"
        )
        # Generous bound: profiling the tables must not cost more than a
        # handful of executions of the query it helps to route.
        assert collect_ms < scatter_ms * 20
        backend.close()
