"""E5 -- Figure 8: effect of schema specialization.

The paper runs the star scenario with a proprietary schema containing only
the views and measures the ratio of reformulation times without/with schema
specialization, broken down into the time to the initial reformulation, the
backchase minimization time, and the total.  The benefit grows (roughly
exponentially) with NC: specialization collapses each element pattern into a
single virtual-relation atom, shrinking both the query and every view
constraint the chase must evaluate.
"""

import time

import pytest

from repro.core import MarsSystem
from repro.engine import CBConfig, CBEngine
from repro.specialize import SpecializationField, SpecializationMapping, Specializer
from repro.workloads import star
from repro.workloads.star import STAR_DOCUMENT, StarParameters

SWEEP = (3, 4, 5, 6)
FULL_SWEEP = (3, 4, 5, 6, 7, 8)


def star_specializations(parameters: StarParameters):
    """Specializations for the star document: the hub pattern and each corner."""
    hub_fields = [SpecializationField("k", ("K",))] + [
        SpecializationField(f"a{i}", (f"A{i}",)) for i in range(1, parameters.corners + 1)
    ]
    mappings = [SpecializationMapping("SpecR", STAR_DOCUMENT, "R", hub_fields)]
    for index in range(1, parameters.corners + 1):
        mappings.append(
            SpecializationMapping(
                f"SpecS{index}",
                STAR_DOCUMENT,
                f"S{index}",
                [SpecializationField("a", ("A",)), SpecializationField("b", ("B",))],
            )
        )
    return mappings


def reformulation_times(corners: int, specialized: bool):
    """(initial, minimization, total) times for one configuration."""
    parameters = StarParameters(corners=corners, include_base_storage=False)
    configuration = star.build_configuration(parameters)
    system = MarsSystem(configuration)
    query = star.client_query(parameters)
    compiled = system.compile_query(query)
    dependencies = system.dependencies
    targets = system.target_relations
    if specialized:
        specializer = Specializer(star_specializations(parameters))
        compiled = specializer.specialize_query(compiled)
        dependencies = specializer.specialize_dependencies(dependencies)
    engine = CBEngine(
        config=system.cb_config, estimator=system.estimator, specs=system._specs
    )
    result = engine.reformulate(compiled, dependencies, target_relations=targets)
    assert result.best is not None, f"no reformulation (specialized={specialized})"
    return result.time_to_initial, result.minimization_time, result.time_to_best


@pytest.mark.parametrize("specialized", [False, True], ids=["plain", "specialized"])
def test_star_views_only_benchmark(benchmark, specialized):
    benchmark.pedantic(
        reformulation_times, args=(4, specialized), iterations=1, rounds=2
    )


def test_report_figure8_ratios(full_sweep):
    sweep = FULL_SWEEP if full_sweep else SWEEP
    print("\nE5 / Figure 8: running-time ratio without/with specialization")
    print(
        f"  {'NC':>4s} {'initial ratio':>14s} {'best ratio':>11s} {'total ratio':>12s}"
        f" {'plain (ms)':>11s} {'spec (ms)':>10s}"
    )
    spec_totals = []
    for corners in sweep:
        plain = reformulation_times(corners, specialized=False)
        spec = reformulation_times(corners, specialized=True)
        ratios = tuple(
            (p / s) if s > 0 else float("inf") for p, s in zip(plain, spec)
        )
        spec_totals.append(spec[2])
        print(
            f"  {corners:4d} {ratios[0]:14.2f} {ratios[1]:11.2f} {ratios[2]:12.2f}"
            f" {plain[2] * 1000:11.1f} {spec[2] * 1000:10.1f}"
        )
    # Both pipelines must stay feasible and agree on the reformulation.  Note
    # (see EXPERIMENTS.md): with the set-oriented chase the premise-matching
    # bottleneck that specialization targets is already gone, so the paper's
    # >1 and growing ratio does not reproduce at these scales; we record the
    # measured ratios instead of asserting the paper's direction.
    assert all(total < 60.0 for total in spec_totals)
