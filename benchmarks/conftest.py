"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation (see DESIGN.md for the experiment index).  Benchmarks print the
rows/series they produce so that ``pytest benchmarks/ --benchmark-only -s``
doubles as the experiment report; EXPERIMENTS.md records a reference run.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-sweep",
        action="store_true",
        default=False,
        help="run the benchmark sweeps over the full parameter ranges",
    )


@pytest.fixture(scope="session")
def full_sweep(request):
    return request.config.getoption("--full-sweep")
