"""Replication benchmarks: read fan-out and the live-update speedup.

Two effects of the replica subsystem are measured:

* **Update-then-read vs. full rebuild** (the headline, asserted): before
  the write path existed, refreshing data meant rebuilding the whole
  executor — re-materializing GReX encodings and every redundant view
  from the documents.  Now a ``ChangeSet`` applies through the mutation
  log and the next publish replays the tail onto its pooled clone.  At
  the top xmark scale the update-then-read path must be at least **5x**
  faster than a rebuild-then-read.

* **Replica read fan-out** (reported): T threads hammer point lookups on
  a ``replicated`` backend at K = 1, 2, 3 over thread-portable SQLite
  replicas.  ``sqlite3`` releases the GIL while stepping, so with more
  replicas concurrent reads spread over independent connections instead
  of serializing on one.  Hardware-dependent by nature, hence reported
  rather than asserted.
"""

import threading
import time

import pytest

from repro.core import MarsExecutor
from repro.logical.atoms import RelationalAtom
from repro.logical.queries import ConjunctiveQuery
from repro.logical.terms import Constant, Variable
from repro.replica import ChangeSet, ReplicatedBackend
from repro.serve import PublishingService
from repro.storage.backends import SQLiteBackend
from repro.workloads import xmark

#: The top xmark scale of the backend benchmark sweep (scale factor 8).
TOP_SCALE = 8


def top_xmark_configuration(scale=TOP_SCALE):
    parameters = xmark.XMarkParameters(
        items_per_region=8 * scale,
        people=15 * scale,
        closed_auctions=20 * scale,
    )
    return xmark.build_configuration(parameters)


class TestUpdateVsRebuild:
    def test_update_then_read_beats_full_rebuild(self):
        """The acceptance criterion: live update >= 5x faster than rebuild."""
        configuration = top_xmark_configuration()
        query = xmark.query_item_names()
        service = PublishingService(configuration, pool_size=1)
        try:
            service.publish(query)  # warm the plan cache and the pool

            # -- the old way: rebuild the executor, then read ----------
            start = time.perf_counter()
            rebuilt = MarsExecutor(configuration, backend="sqlite")
            reformulation = service.reformulate(query)
            rebuilt.execute_reformulation(reformulation.best)
            rebuild_seconds = time.perf_counter() - start
            rebuilt.close()

            # -- the new way: apply a change set, then publish ---------
            start = time.perf_counter()
            service.update(
                ChangeSet.build(
                    inserts={"itemName": [("item_live_0", "fresh")]},
                    deletes={"itemName": []},
                )
            )
            rows = service.publish(query)
            update_seconds = time.perf_counter() - start

            assert ("item_live_0", "fresh") in {tuple(r) for r in rows}
            speedup = rebuild_seconds / max(update_seconds, 1e-9)
            print(
                f"\nUpdate-then-read vs full rebuild (xmark scale {TOP_SCALE}):"
                f"\n  rebuild + read: {rebuild_seconds * 1000:10.1f} ms"
                f"\n  update + read:  {update_seconds * 1000:10.1f} ms"
                f"\n  speedup:        {speedup:10.1f}x"
            )
            assert speedup >= 5.0, (
                f"live update ({update_seconds * 1000:.1f} ms) is not 5x "
                f"faster than a rebuild ({rebuild_seconds * 1000:.1f} ms)"
            )
        finally:
            service.close()


# ----------------------------------------------------------------------
# Replica read fan-out throughput (reported)
# ----------------------------------------------------------------------
def synthesize(scale=2, seed=13):
    import random

    rng = random.Random(seed)
    item_ids = [f"item_{i}" for i in range(400 * scale)]
    auctions = [
        (rng.choice(item_ids), f"person_{rng.randrange(50 * scale)}", str(rng.randint(5, 500)))
        for _ in range(8000 * scale)
    ]
    return auctions


def point_query(item_id):
    buyer, price = Variable("b"), Variable("p")
    return ConjunctiveQuery(
        "point",
        (buyer, price),
        (RelationalAtom("auctionPrice", (Constant(item_id), buyer, price)),),
    )


def replicated_sqlite(replicas, auctions):
    children = [
        SQLiteBackend(auto_index=False, check_same_thread=False)
        for _ in range(replicas)
    ]
    backend = ReplicatedBackend(children=children)
    backend.create_table("auctionPrice", 3, ("item_id", "buyer_id", "price"))
    backend.insert_many("auctionPrice", auctions)
    return backend


def hammer(backend, queries, threads):
    """Total seconds for *threads* workers to run the query list each."""
    barrier = threading.Barrier(threads + 1)

    def worker():
        barrier.wait()
        for query in queries:
            backend.execute(query)

    workers = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in workers:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in workers:
        thread.join()
    return time.perf_counter() - start


class TestReplicaFanOut:
    def test_report_read_throughput_as_replicas_grow(self, full_sweep):
        scale = 4 if full_sweep else 2
        threads = 4
        auctions = synthesize(scale)
        probes = [auctions[i * 97 % len(auctions)][0] for i in range(25)]
        queries = [point_query(item_id) for item_id in probes]
        print(
            f"\nReplica read fan-out: {threads} threads x {len(queries)} "
            f"point lookups ({len(auctions)} auctions, untuned sqlite)"
        )
        baseline = None
        for replicas in (1, 2, 3):
            backend = replicated_sqlite(replicas, auctions)
            seconds = hammer(backend, queries, threads)
            throughput = threads * len(queries) / seconds
            stats = backend.stats()
            assert sum(stats.reads_per_replica) == threads * len(queries)
            if replicas > 1:
                assert all(count > 0 for count in stats.reads_per_replica)
            if baseline is None:
                baseline = throughput
            print(
                f"  K={replicas}: {seconds * 1000:9.1f} ms "
                f"({throughput:8.0f} reads/s, {throughput / baseline:5.2f}x, "
                f"reads/replica {list(stats.reads_per_replica)})"
            )
            backend.close()

    @pytest.mark.parametrize("replicas", (1, 3))
    def test_point_lookup_benchmark(self, benchmark, replicas):
        auctions = synthesize(1)
        backend = replicated_sqlite(replicas, auctions)
        query = point_query(auctions[len(auctions) // 2][0])
        benchmark.pedantic(backend.execute, args=(query,), iterations=1, rounds=3)
        backend.close()
