"""E1 -- the section 3 chase "stress test".

The paper chases the 20-atom compilation of ``//a/b/c/d/e/f/g/h/i/j`` with
the TIX axioms.  The original C&B prototype did not converge in 12 hours;
the new set-oriented implementation takes 2.6 s and the closure shortcut
brings it to 640 ms.  We reproduce the *shape*: the naive strategy is orders
of magnitude slower than the set-oriented one (it is run on a truncated
chain so the benchmark terminates), and the shortcut gives a further large
factor on the full chain.
"""

import time

import pytest

from repro.compile import GrexCompiler, GrexSchema, tix_dependencies
from repro.engine import ChaseConfig, ChaseEngine, ShortcutChaseEngine
from repro.logical import Variable
from repro.xbind import PathAtom, XBindQuery

DOCUMENT = "stress.xml"


def stress_query(depth: int = 10):
    """The compiled ``//a/b/.../<depth letters>`` query (20 atoms at depth 10)."""
    schema = GrexSchema(DOCUMENT)
    compiler = GrexCompiler({DOCUMENT: schema})
    letters = "abcdefghij"[:depth]
    path = "//" + "/".join(letters)
    target = Variable("t")
    query = XBindQuery("Stress", (target,), (PathAtom(path, target),))
    return compiler.compile_xbind(query), schema


def run_chase(depth: int, strategy: str, shortcut: bool) -> float:
    compiled, schema = stress_query(depth)
    dependencies = tix_dependencies(schema)
    config = ChaseConfig(strategy=strategy)
    start = time.perf_counter()
    if shortcut:
        engine = ShortcutChaseEngine([schema.closure_spec()], config)
        result = engine.chase(compiled, dependencies)
    else:
        result = ChaseEngine(config).chase(compiled, dependencies)
    elapsed = time.perf_counter() - start
    assert result.branches, "chase unexpectedly failed"
    return elapsed


class TestStressChase:
    def test_set_oriented_chase_full_depth(self, benchmark):
        """New implementation on the full 20-atom chain (paper: 2.6 s)."""
        benchmark.pedantic(
            run_chase, args=(10, "joinTree", False), iterations=1, rounds=3
        )

    def test_shortcut_chase_full_depth(self, benchmark):
        """New implementation plus the closure shortcut (paper: 640 ms)."""
        benchmark.pedantic(
            run_chase, args=(10, "joinTree", True), iterations=1, rounds=3
        )

    def test_naive_chase_truncated_depth(self, benchmark):
        """Original-style naive chase; run on a shorter chain to stay feasible."""
        benchmark.pedantic(
            run_chase, args=(5, "naive", False), iterations=1, rounds=1
        )

    def test_report_relative_factors(self):
        """Print the table reproduced for EXPERIMENTS.md."""
        rows = []
        for label, depth, strategy, shortcut in [
            ("naive (original style), depth 5", 5, "naive", False),
            ("set-oriented, depth 5", 5, "joinTree", False),
            ("set-oriented, depth 10", 10, "joinTree", False),
            ("set-oriented + shortcut, depth 10", 10, "joinTree", True),
        ]:
            rows.append((label, run_chase(depth, strategy, shortcut)))
        print("\nE1: chase stress test (//a/b/.../j with TIX)")
        for label, seconds in rows:
            print(f"  {label:40s} {seconds * 1000:10.1f} ms")
        naive = rows[0][1]
        fast_same_depth = rows[1][1]
        full = rows[2][1]
        shortcut_time = rows[3][1]
        # The paper's qualitative claims: the set-oriented chase beats the
        # naive strategy by a large factor, and the shortcut further improves
        # the full-depth chase.
        assert fast_same_depth < naive
        assert shortcut_time < full
