"""Sharded execution vs a single backend on xmark-shaped data.

Two effects are measured as the shard count grows:

* **Router pruning** (the headline number): a query binding the partition
  key to a constant executes on exactly one shard.  MARS treats the
  engines holding proprietary storage as black boxes it cannot re-index
  (``auto_index=False`` models that), so on a single backend the point
  lookup costs a full scan of ``auctionPrice`` while the sharded
  deployment scans one fragment — work drops by the shard count, no
  parallelism required.  The acceptance check asserts sharded SQLite beats
  single SQLite at the largest scale tested.

* **Co-partitioned scatter**: the Q4-style ``auctionPrice ⋈ itemName``
  join (both split on ``item_id``) fans out across shards on the thread
  pool.  ``sqlite3`` releases the GIL while stepping, so on multi-core
  hosts the scatter overlaps; on a single core the total join work is
  conserved and the numbers mainly show the fan-out/merge overhead.  This
  sweep is reported, not asserted — it is hardware-dependent by nature.

Data is generated in the XMark id scheme at scales far beyond what the
XML-document pipeline builds, loaded straight into the storage layer
(the end-to-end pipeline over the sharded backend is exercised by
``test_sharded_reformulation_end_to_end`` at document scale).
"""

import random
import time

import pytest

from repro.core import MarsExecutor, MarsSystem
from repro.logical.atoms import RelationalAtom
from repro.logical.queries import ConjunctiveQuery
from repro.logical.terms import Constant, Variable
from repro.shard import ShardedBackend
from repro.storage.backends import SQLiteBackend
from repro.workloads import xmark

SHARD_COUNTS = (1, 2, 4)
ROUNDS = 5


# ----------------------------------------------------------------------
# XMark-shaped synthetic tables (auctionPrice, itemName)
# ----------------------------------------------------------------------
def synthesize(scale, seed=13):
    rng = random.Random(seed)
    n_items = 400 * scale
    n_people = 50 * scale
    n_auctions = 15000 * scale
    regions = xmark.REGIONS
    item_ids = [
        f"item_{regions[i % len(regions)]}_{i}" for i in range(n_items)
    ]
    item_names = [(item_id, f"gadget{i % 97}") for i, item_id in enumerate(item_ids)]
    auctions = [
        (
            rng.choice(item_ids),
            f"person_{rng.randrange(n_people)}",
            str(rng.randint(5, 500)),
        )
        for _ in range(n_auctions)
    ]
    return item_names, auctions


def load(backend, item_names, auctions):
    backend.create_table("itemName", 2, ("item_id", "name"))
    backend.create_table("auctionPrice", 3, ("item_id", "buyer_id", "price"))
    backend.insert_many("itemName", item_names)
    backend.insert_many("auctionPrice", auctions)
    return backend


def untuned_sqlite_children(count):
    """SQLite shards modeling engines MARS cannot add indexes to."""
    return [
        SQLiteBackend(auto_index=False, check_same_thread=False)
        for _ in range(count)
    ]


def sharded_backend(count, item_names, auctions):
    backend = ShardedBackend(
        children=untuned_sqlite_children(count),
        partition_keys={"auctionPrice": "item_id", "itemName": "item_id"},
    )
    return load(backend, item_names, auctions)


def point_query(item_id):
    buyer, price = Variable("b"), Variable("p")
    return ConjunctiveQuery(
        "point",
        (buyer, price),
        (RelationalAtom("auctionPrice", (Constant(item_id), buyer, price)),),
    )


def join_query():
    item, buyer, price, name = (
        Variable("i"),
        Variable("b"),
        Variable("p"),
        Variable("n"),
    )
    return ConjunctiveQuery(
        "item_prices",
        (name, price),
        (
            RelationalAtom("auctionPrice", (item, buyer, price)),
            RelationalAtom("itemName", (item, name)),
        ),
    )


def best_ms(backend, query, rounds=ROUNDS, distinct=True):
    best = float("inf")
    rows = None
    for _ in range(rounds):
        start = time.perf_counter()
        rows = backend.execute(query, distinct=distinct)
        best = min(best, time.perf_counter() - start)
    return rows, best * 1000.0


class TestShardBenchmark:
    def test_report_pruning_speedup_and_assert_at_top_scale(self, full_sweep):
        """Single-shard pruning: point lookups vs the full-table scan."""
        scales = (1, 2, 4, 8) if full_sweep else (1, 2, 4)
        print("\nShard pruning: key-bound lookup on auctionPrice (untuned sqlite)")
        print(
            f"  {'scale':>5s} {'rows':>8s} {'single (ms)':>12s} "
            + "".join(f"{f'shard x{count} (ms)':>16s}" for count in SHARD_COUNTS)
            + f" {'best speedup':>13s}"
        )
        top_scale = max(scales)
        top_single = top_best_sharded = None
        for scale in scales:
            item_names, auctions = synthesize(scale)
            probe = auctions[len(auctions) // 2][0]
            query = point_query(probe)
            single = load(SQLiteBackend(auto_index=False), item_names, auctions)
            expected, single_ms = best_ms(single, query)
            single.close()
            cells = []
            sharded_times = []
            for count in SHARD_COUNTS:
                backend = sharded_backend(count, item_names, auctions)
                rows, sharded_ms = best_ms(backend, query)
                assert sorted(rows) == sorted(expected), f"x{count} diverged"
                if count > 1:
                    stats = backend.stats()
                    assert stats.router.single_shard == stats.router.queries
                sharded_times.append(sharded_ms)
                cells.append(f"{sharded_ms:16.3f}")
                backend.close()
            speedup = single_ms / min(sharded_times)
            print(
                f"  {scale:>5d} {len(auctions):>8d} {single_ms:>12.3f}"
                + "".join(cells)
                + f" {speedup:>12.2f}x"
            )
            if scale == top_scale:
                top_single, top_best_sharded = single_ms, min(sharded_times)
        # The acceptance criterion: at the largest xmark scale tested, the
        # sharded deployment answers faster than the single backend.
        assert top_best_sharded < top_single, (
            f"sharded sqlite ({top_best_sharded:.3f} ms) did not beat single "
            f"sqlite ({top_single:.3f} ms) at scale {top_scale}"
        )

    def test_report_scatter_join_as_shards_grow(self, full_sweep):
        """Co-partitioned scatter join: reported per shard count."""
        scale = 4 if full_sweep else 2
        item_names, auctions = synthesize(scale)
        query = join_query()
        single = load(SQLiteBackend(auto_index=False), item_names, auctions)
        expected, single_ms = best_ms(single, query, rounds=3)
        single.close()
        print(
            f"\nCo-partitioned scatter: auctionPrice |x| itemName "
            f"({len(auctions)} auctions)"
        )
        print(f"  single sqlite: {single_ms:10.2f} ms ({len(expected)} rows)")
        for count in SHARD_COUNTS:
            backend = sharded_backend(count, item_names, auctions)
            rows, sharded_ms = best_ms(backend, query, rounds=3)
            assert sorted(rows) == sorted(expected)
            if count > 1:
                stats = backend.stats()
                assert stats.router.scatter >= 1
                assert all(executions for executions in stats.executions_per_shard)
            print(f"  sharded x{count}:    {sharded_ms:10.2f} ms")
            backend.close()

    @pytest.mark.parametrize("shards", (1, 4))
    def test_point_lookup_benchmark(self, benchmark, shards):
        item_names, auctions = synthesize(1)
        probe = auctions[len(auctions) // 2][0]
        backend = sharded_backend(shards, item_names, auctions)
        benchmark.pedantic(
            backend.execute, args=(point_query(probe),), iterations=1, rounds=3
        )
        backend.close()

    def test_sharded_reformulation_end_to_end(self):
        """The real pipeline: reformulate on xmark, execute sharded, agree."""
        parameters = xmark.XMarkParameters(
            items_per_region=8, people=15, closed_auctions=40
        )
        configuration = xmark.build_configuration(parameters)
        system = MarsSystem(configuration)
        memory_executor = MarsExecutor(configuration, backend="memory")
        sharded_executor = MarsExecutor(
            configuration,
            backend=configuration.create_backend(
                "sharded", shards=4, children="sqlite"
            ),
        )
        for query in xmark.query_suite():
            result = system.reformulate(query)
            assert result.found
            assert sorted(
                map(repr, sharded_executor.execute_reformulation(result.best))
            ) == sorted(map(repr, memory_executor.execute_reformulation(result.best)))
        stats = sharded_executor.backend.stats()
        assert stats.router.queries >= len(xmark.query_suite())
        sharded_executor.backend.close()
        memory_executor.close()
