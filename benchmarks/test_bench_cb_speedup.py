"""E2 -- speedup of the new C&B implementation over the original one.

The paper reports that the new set-oriented chase implementation is 30-100x
(at least two orders of magnitude in the extended version) faster than the
original tuple-at-a-time prototype.  We compare the two homomorphism-search
strategies on the same reformulation problems (relational star queries with
views) and report the ratio; absolute numbers differ from 2003 hardware but
the naive strategy must lose by a growing factor.
"""

import time

import pytest

from repro.engine import ChaseConfig, ChaseEngine
from repro.logical import ConjunctiveQuery, RelationalAtom, Variable, view_inclusion_dependencies


def relational_star_problem(corners: int):
    """A relational star query with one materialized view per corner pair."""
    key = Variable("k")
    hub_terms = [key] + [Variable(f"a{i}") for i in range(1, corners + 1)]
    atoms = [RelationalAtom("Hub", tuple(hub_terms))]
    head = [key]
    for index in range(1, corners + 1):
        b = Variable(f"b{index}")
        atoms.append(RelationalAtom(f"Corner{index}", (Variable(f"a{index}"), b)))
        head.append(b)
    query = ConjunctiveQuery(f"RelStar{corners}", head, atoms)
    dependencies = []
    for index in range(1, corners):
        view_body = [
            RelationalAtom("Hub", tuple(hub_terms)),
            RelationalAtom(f"Corner{index}", (Variable(f"a{index}"), Variable(f"b{index}"))),
            RelationalAtom(
                f"Corner{index+1}", (Variable(f"a{index+1}"), Variable(f"b{index+1}"))
            ),
        ]
        dependencies.extend(
            view_inclusion_dependencies(
                f"W{index}", [key, Variable(f"b{index}"), Variable(f"b{index+1}")], view_body
            )
        )
    return query, dependencies


def chase_time(strategy: str, corners: int) -> float:
    query, dependencies = relational_star_problem(corners)
    engine = ChaseEngine(ChaseConfig(strategy=strategy))
    start = time.perf_counter()
    result = engine.chase(query, dependencies)
    elapsed = time.perf_counter() - start
    assert result.branches
    return elapsed


class TestCBSpeedup:
    @pytest.mark.parametrize("corners", [4, 6])
    def test_join_tree_strategy(self, benchmark, corners):
        benchmark.pedantic(chase_time, args=("joinTree", corners), iterations=1, rounds=3)

    @pytest.mark.parametrize("corners", [4, 6])
    def test_naive_strategy(self, benchmark, corners):
        benchmark.pedantic(chase_time, args=("naive", corners), iterations=1, rounds=1)

    def test_report_speedup_series(self):
        print("\nE2: naive vs set-oriented chase (relational star with views)")
        print(f"  {'corners':>8s} {'naive (ms)':>12s} {'joinTree (ms)':>14s} {'ratio':>8s}")
        ratios = []
        for corners in (3, 4, 5, 6):
            naive = chase_time("naive", corners)
            fast = chase_time("joinTree", corners)
            ratio = naive / fast if fast > 0 else float("inf")
            ratios.append(ratio)
            print(
                f"  {corners:8d} {naive * 1000:12.2f} {fast * 1000:14.2f} {ratio:8.1f}"
            )
        # The new implementation must win, increasingly so on larger problems.
        assert ratios[-1] > 1.0
        assert max(ratios) >= min(ratios)
