"""E4 -- net execution-time savings (paper section 4.2).

At NC = 3 the paper reports Galax taking 1.5 s on the original query versus
128 ms on the reformulation, so the 141 ms spent reformulating nets a saving
of 1.3 s, and the saving grows with NC.  Our substitute for Galax is the
naive XBind evaluator over the published document; the reformulation runs on
the proprietary relational storage.  The absolute times are smaller on a
modern machine, but the claim we verify is the same: reformulation time is
small compared to the execution time it saves, and the advantage grows with
the configuration size.
"""

import pytest

from repro.core import MarsExecutor, MarsSystem
from repro.workloads import star
from repro.workloads.star import StarParameters


def build(corners: int, hub_count: int = 40, corner_size: int = 30):
    parameters = StarParameters(
        corners=corners, hub_count=hub_count, corner_size=corner_size
    )
    configuration = star.build_configuration(parameters, with_instance=True)
    system = MarsSystem(configuration)
    executor = MarsExecutor(configuration)
    query = star.client_query(parameters)
    return system, executor, query


def original_execution(executor, query):
    return executor.execute_original(query)


def reformulated_execution(executor, reformulation):
    return executor.execute_reformulation(reformulation)


class TestExecutionSavings:
    def test_original_execution_benchmark(self, benchmark):
        _, executor, query = build(3)
        benchmark.pedantic(original_execution, args=(executor, query), iterations=1, rounds=3)

    def test_reformulated_execution_benchmark(self, benchmark):
        system, executor, query = build(3)
        result = system.reformulate(query)
        benchmark.pedantic(
            reformulated_execution, args=(executor, result.best), iterations=1, rounds=3
        )

    def test_report_net_savings(self):
        print("\nE4: reformulation time vs execution-time savings")
        print(
            f"  {'NC':>4s} {'reformulate (ms)':>17s} {'original exec (ms)':>19s}"
            f" {'reformulated exec (ms)':>23s} {'net saving (ms)':>16s}"
        )
        for corners in (3, 4, 5):
            system, executor, query = build(corners)
            result = system.reformulate(query)
            assert result.found
            comparison = executor.compare(query, result.best)
            assert comparison.answers_match
            reformulation_ms = result.time_to_best * 1000
            original_ms = comparison.original_seconds * 1000
            reformulated_ms = comparison.reformulated_seconds * 1000
            net_ms = original_ms - reformulated_ms - reformulation_ms
            print(
                f"  {corners:4d} {reformulation_ms:17.1f} {original_ms:19.1f}"
                f" {reformulated_ms:23.1f} {net_ms:16.1f}"
            )
            # The reformulated query must be faster to execute than the original.
            assert comparison.reformulated_seconds < comparison.original_seconds
