"""Profiling overhead: 1-in-10 sampled profiling must cost < 5% on publish.

The bargain of the profile package mirrors the tracer's: *sampled*
per-operator profiling is affordable because the sampling decision is
made before execution — nine publishes in ten run against
:data:`~repro.profile.NULL_PROFILE` (one thread-local lookup per query,
no estimate arithmetic, no node allocation), and only the sampled tenth
pays for distinct-count selectivities and the operator tree.

Two numbers are produced, following ``test_bench_obs`` exactly:

* **The asserted headline** — publish latency with ``profile_sample=10``
  vs. ``profile_sample=0`` on the paper's benchmark workload (xmark at
  the backend sweep's top scale), warmed plan cache, interleaved
  min-of-trials, best of up to three attempts.  The overhead must stay
  under **5%**.
* **The reported worst case** — the same comparison on the tiny medical
  workload, where the sampled publish's estimate arithmetic is
  proportionally largest.  Printed, not asserted.

Methodology notes in ``benchmarks/test_bench_obs.py`` apply verbatim:
both services warm first, trials alternate (base, profiled, base,
profiled, ...), and the minimum trial per service is compared so
scheduler noise and GC pauses are discarded rather than averaged in.
"""

from repro.obs import timer
from repro.profile import NULL_PROFILE, current_profile
from repro.serve import PublishingService
from repro.workloads import medical, xmark

#: The top xmark scale of the backend benchmark sweep (scale factor 8).
TOP_SCALE = 8
MAX_OVERHEAD = 0.05
#: The sampling rate the headline asserts: one profiled publish in ten.
SAMPLE = 10


def top_xmark_configuration(scale=TOP_SCALE):
    parameters = xmark.XMarkParameters(
        items_per_region=8 * scale,
        people=15 * scale,
        closed_auctions=20 * scale,
    )
    return xmark.build_configuration(parameters)


def _measure_pair(make_service, queries, trials, rounds_per_trial, warmup):
    """Interleaved min-of-trials seconds-per-publish for (base, profiled)."""
    services = {}
    for sample in (0, SAMPLE):
        service = services[sample] = make_service(sample)
        for query in queries:
            for _ in range(warmup):
                service.publish(query)
    assert services[0].last_profile is None
    assert services[SAMPLE].last_profile is not None
    best = {0: None, SAMPLE: None}
    try:
        for _ in range(trials):
            for sample in (0, SAMPLE):
                service = services[sample]
                clock = timer()
                for _ in range(rounds_per_trial):
                    for query in queries:
                        service.publish(query)
                seconds = clock.stop()
                previous = best[sample]
                best[sample] = (
                    seconds if previous is None else min(previous, seconds)
                )
    finally:
        for service in services.values():
            service.close()
    publishes = rounds_per_trial * len(queries)
    return best[0] / publishes, best[SAMPLE] / publishes


def _report(title, base, profiled):
    overhead = profiled / base - 1.0
    print(
        f"\n{title}:"
        f"\n  profiling off:     {base * 1e6:8.1f} us/publish"
        f"\n  1-in-{SAMPLE} profiling: {profiled * 1e6:8.1f} us/publish"
        f"\n  overhead:          {overhead * 100:8.2f} % "
        f"({(profiled - base) * 1e6:+.1f} us/publish)"
    )
    return overhead


class TestProfilingOverhead:
    def test_sampled_profiling_publish_overhead_under_five_percent(self):
        """The acceptance criterion: 1-in-10 sampled profiling adds < 5%
        to the warmed publish path on the paper's benchmark workload."""
        queries = [xmark.query_item_names()] + list(xmark.query_suite())[:3]
        overhead = None
        for attempt in range(3):
            base, profiled = _measure_pair(
                lambda sample: PublishingService(
                    top_xmark_configuration(),
                    pool_size=2,
                    profile_sample=sample,
                ),
                queries,
                trials=20,
                rounds_per_trial=10,
                warmup=5,
            )
            measured = _report(
                f"Publish-path profiling overhead, attempt {attempt + 1} "
                f"(xmark scale {TOP_SCALE}, sample=1/{SAMPLE})",
                base,
                profiled,
            )
            overhead = measured if overhead is None else min(overhead, measured)
            if overhead < MAX_OVERHEAD:
                break
        assert overhead < MAX_OVERHEAD, (
            f"1-in-{SAMPLE} sampled profiling cost {overhead:.1%} on the "
            f"warmed publish path on every attempt; the budget is "
            f"{MAX_OVERHEAD:.0%}"
        )

    def test_toy_query_overhead_is_reported(self):
        """The worst case: the sampled tenth's estimate arithmetic against
        the cheapest possible publish.  Reported for visibility, not
        asserted — at sub-200us per publish the comparison is noise."""
        base, profiled = _measure_pair(
            lambda sample: PublishingService(
                medical.build_configuration(),
                pool_size=2,
                profile_sample=sample,
            ),
            [medical.client_query()],
            trials=15,
            rounds_per_trial=200,
            warmup=50,
        )
        _report("Toy-workload floor (medical, reported only)", base, profiled)

    def test_disabled_profiling_takes_the_null_path(self):
        """The guard the overhead numbers rest on: with sampling off no
        buffer exists, publishes leave no profile behind, and the ambient
        sink stays the falsy singleton."""
        with PublishingService(
            medical.build_configuration(), pool_size=1, profile_sample=0
        ) as service:
            for _ in range(3):
                service.publish(medical.client_query())
            assert service.profile_buffer is None
            assert service.last_profile is None
            assert current_profile() is NULL_PROFILE
            assert not NULL_PROFILE
