"""Durable-log benchmarks: the price of surviving a restart.

Measures the append path of :class:`~repro.replica.DurableMutationLog`
against the in-memory :class:`~repro.replica.MutationLog` baseline:

* **Append overhead** (asserted): with ``fsync="off"`` (page-cache
  durability — the OS flushes, a process crash loses nothing, only a
  power cut can) a durable append does one ``struct.pack`` + CRC +
  buffered write per record.  The asserted bound is deliberately
  generous: the durable log must stay within **200x** of an in-memory
  list append, which on any real machine leaves an order of magnitude of
  headroom — failing it means an accidental fsync-per-append or a
  quadratic segment scan crept in.
* **Recovery time** (reported): reopening the directory and replaying
  every entry back out — the restart cost a deployment actually pays.

``fsync="always"`` is reported but never asserted: its cost is the
storage device's flush latency, not this code's.
"""

import time

from repro.replica import ChangeSet, DurableMutationLog, MutationLog

APPENDS = 2000


def changesets(count=APPENDS):
    return [
        ChangeSet.build(inserts={"itemName": [(f"item_{i}", f"name_{i}")]})
        for i in range(count)
    ]


def timed_appends(log, entries):
    start = time.perf_counter()
    for changeset in entries:
        log.append(changeset)
    return time.perf_counter() - start


class TestDurableAppendOverhead:
    def test_append_overhead_within_bounds(self, tmp_path):
        entries = changesets()

        memory_log = MutationLog()
        memory_seconds = timed_appends(memory_log, entries)

        durable = DurableMutationLog(tmp_path / "nosync", fsync="off")
        durable_seconds = timed_appends(durable, entries)
        durable.close()

        overhead = durable_seconds / max(memory_seconds, 1e-9)
        per_append_us = durable_seconds / APPENDS * 1e6
        print(
            f"\nDurable append overhead ({APPENDS} appends):"
            f"\n  in-memory:            {memory_seconds * 1000:8.1f} ms"
            f"\n  durable (fsync=off):  {durable_seconds * 1000:8.1f} ms "
            f"({per_append_us:.0f} us/append, {overhead:.1f}x in-memory)"
        )
        assert overhead <= 200.0, (
            f"durable append is {overhead:.0f}x the in-memory log "
            f"({per_append_us:.0f} us/append): expected buffered writes, "
            "this looks like an fsync or a rescan per append"
        )

    def test_report_fsync_always_and_recovery(self, tmp_path):
        entries = changesets(200)
        synced = DurableMutationLog(tmp_path / "sync", fsync="always")
        synced_seconds = timed_appends(synced, entries)
        synced.close()
        print(
            f"\nfsync=always ({len(entries)} appends): "
            f"{synced_seconds * 1000:.1f} ms "
            f"({synced_seconds / len(entries) * 1e6:.0f} us/append)"
        )

        start = time.perf_counter()
        reopened = DurableMutationLog(tmp_path / "sync", fsync="always")
        recovered = len(reopened.entries_since(0))
        recovery_seconds = time.perf_counter() - start
        reopened.close()
        assert recovered == len(entries)
        print(
            f"recovery: {recovered} entries in {recovery_seconds * 1000:.1f} ms"
        )
